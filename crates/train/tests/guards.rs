//! Numeric-guard semantics under deterministic fault injection: abort
//! names the failure, skip drops the step without touching state,
//! rollback restores the last checkpoint exactly, and a repeating fault
//! cannot put rollback into an infinite loop.
//!
//! Every training run in this binary executes inside
//! [`rex_faults::with_plan`] (a no-fault plan for the clean baselines) so
//! concurrently scheduled tests cannot observe each other's injections.

use rex_core::ScheduleSpec;
use rex_data::images::synth_cifar10;
use rex_data::ClassificationDataset;
use rex_faults::FaultPlan;
use rex_nn::{Mlp, Module};
use rex_telemetry::{Event, MemorySink, Recorder};
use rex_tensor::{Prng, Tensor};
use rex_train::{
    FtConfig, GuardPolicy, OptimizerKind, TrainConfig, TrainError, TrainResult, Trainer,
};

fn flatten(t: &Tensor) -> Tensor {
    let n = t.shape()[0];
    let d: usize = t.shape()[1..].iter().product();
    t.reshape(&[n, d]).unwrap()
}

fn model(seed: u64) -> Mlp {
    let mut rng = Prng::new(seed);
    Mlp::new("m", &[3 * 12 * 12, 8, 10], &mut rng)
}

fn config(epochs: usize, batch_size: usize, ft: FtConfig) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size,
        lr: 0.1,
        optimizer: OptimizerKind::sgdm(),
        schedule: ScheduleSpec::Linear,
        augment: false,
        grad_clip: None,
        seed: 33,
        dtype: rex_tensor::DType::F32,
        ft,
    }
}

fn run(
    cfg: TrainConfig,
    data: &ClassificationDataset,
    m: &Mlp,
    rec: &mut Recorder,
) -> Result<TrainResult, TrainError> {
    Trainer::new(cfg).train_classifier_traced(
        m,
        &flatten(&data.train_images),
        &data.train_labels,
        &flatten(&data.test_images),
        &data.test_labels,
        rec,
    )
}

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("rex_guards_{name}_{}.state", std::process::id()))
}

#[test]
fn abort_names_the_step_and_offending_tensor() {
    let data = synth_cifar10(4, 2, 50);
    let m = model(51);
    let ft = FtConfig {
        guard: GuardPolicy::Abort,
        ..FtConfig::default()
    };
    let plan = FaultPlan::parse("nan-grad-at-step=1").unwrap();
    let err = rex_faults::with_plan(plan, || {
        run(config(1, 20, ft), &data, &m, &mut Recorder::disabled()).unwrap_err()
    });
    match &err {
        TrainError::NonFinite { step, what, .. } => {
            assert_eq!(*step, 1);
            assert!(what.starts_with("grad:m."), "tensor not named: {what}");
        }
        other => panic!("unexpected {other:?}"),
    }
    let msg = err.to_string();
    assert!(msg.contains("step 1"), "{msg}");
}

#[test]
fn abort_on_nan_loss_reports_the_loss() {
    let data = synth_cifar10(4, 2, 52);
    let m = model(53);
    let ft = FtConfig {
        guard: GuardPolicy::Abort,
        ..FtConfig::default()
    };
    let plan = FaultPlan::parse("nan-loss-at-step=0").unwrap();
    let err = rex_faults::with_plan(plan, || {
        run(config(1, 20, ft), &data, &m, &mut Recorder::disabled()).unwrap_err()
    });
    match err {
        TrainError::NonFinite { step, ref what, .. } => {
            assert_eq!(step, 0);
            assert_eq!(what, "loss");
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn skip_leaves_params_untouched_and_advances_budget() {
    // 20 train samples, batch 20 → exactly one step per epoch
    let data = synth_cifar10(2, 1, 54);
    let m = model(55);
    let before: Vec<Vec<f32>> = m
        .params()
        .iter()
        .map(|p| p.value().data().to_vec())
        .collect();
    let ft = FtConfig {
        guard: GuardPolicy::SkipStep,
        ..FtConfig::default()
    };
    // single-epoch run whose only step is skipped: nothing may move
    let plan = FaultPlan::parse("nan-loss-at-step=0:1").unwrap();
    let result = rex_faults::with_plan(plan, || {
        run(
            config(1, 20, ft.clone()),
            &data,
            &m,
            &mut Recorder::disabled(),
        )
        .unwrap()
    });
    let after: Vec<Vec<f32>> = m
        .params()
        .iter()
        .map(|p| p.value().data().to_vec())
        .collect();
    assert_eq!(before, after, "a skipped step must not update parameters");
    assert_eq!(result.history[0].train_loss, 0.0, "no batches accumulated");

    // two-epoch run: the skipped step still advances the budget clock, so
    // the surviving step sits at progress 20/40 → linear factor 0.5
    let m2 = model(55);
    let sink = MemorySink::unbounded();
    let handle = sink.handle();
    let mut rec = Recorder::new(Box::new(sink));
    let plan = FaultPlan::parse("nan-loss-at-step=0:1").unwrap();
    rex_faults::with_plan(plan, || {
        run(config(2, 20, ft), &data, &m2, &mut rec).unwrap();
    });
    let steps = handle.steps();
    assert_eq!(steps.len(), 1, "step 0 skipped, step 1 recorded");
    assert_eq!(steps[0].step, 1);
    assert_eq!(steps[0].epoch, 1);
    assert!(
        (steps[0].lr - 0.05).abs() < 1e-9,
        "budget did not advance past the skipped batch: lr {}",
        steps[0].lr
    );
    let trips: Vec<Event> = handle
        .events()
        .into_iter()
        .filter(|e| matches!(e, Event::GuardTrip { .. }))
        .collect();
    assert_eq!(trips.len(), 1);
    match &trips[0] {
        Event::GuardTrip {
            step, what, action, ..
        } => {
            assert_eq!(*step, 0);
            assert_eq!(what, "loss");
            assert_eq!(action, "skip");
        }
        _ => unreachable!(),
    }
}

#[test]
fn rollback_restores_the_checkpoint_and_matches_the_clean_run() {
    // 40 train samples, batch 10 → 4 steps/epoch × 2 epochs; checkpoints
    // at steps 2,4,6,8; a one-shot NaN at step 3 forces a rollback to the
    // step-2 snapshot, after which the run must land exactly where the
    // clean run does
    let data = synth_cifar10(4, 2, 56);
    let ft_clean = FtConfig {
        checkpoint_every: Some(2),
        checkpoint_path: Some(tmp("rollback_clean")),
        guard: GuardPolicy::Rollback,
        ..FtConfig::default()
    };
    let m_clean = model(57);
    let clean = rex_faults::with_plan(FaultPlan::default(), || {
        run(
            config(2, 10, ft_clean.clone()),
            &data,
            &m_clean,
            &mut Recorder::disabled(),
        )
        .unwrap()
    });

    let m_fault = model(57);
    let sink = MemorySink::unbounded();
    let handle = sink.handle();
    let mut rec = Recorder::new(Box::new(sink));
    let ft_fault = FtConfig {
        checkpoint_path: Some(tmp("rollback_fault")),
        ..ft_clean.clone()
    };
    let plan = FaultPlan::parse("nan-loss-at-step=3:1").unwrap();
    let faulted = rex_faults::with_plan(plan, || {
        run(config(2, 10, ft_fault), &data, &m_fault, &mut rec).unwrap()
    });

    assert_eq!(faulted.final_metric, clean.final_metric);
    assert_eq!(faulted.history, clean.history);
    // the rollback re-ran step 2, so its record appears twice
    let step2 = handle.steps().iter().filter(|r| r.step == 2).count();
    assert_eq!(step2, 2, "step 2 should be re-recorded after rollback");
    assert!(handle
        .events()
        .iter()
        .any(|e| matches!(e, Event::GuardTrip { action, .. } if action == "rollback")));
    for name in ["rollback_clean", "rollback_fault"] {
        let _ = std::fs::remove_file(tmp(name));
    }
}

#[test]
fn repeating_fault_after_rollback_aborts_instead_of_looping() {
    let data = synth_cifar10(4, 2, 58);
    let m = model(59);
    let ft = FtConfig {
        checkpoint_every: Some(2),
        checkpoint_path: Some(tmp("double_trip")),
        guard: GuardPolicy::Rollback,
        ..FtConfig::default()
    };
    // unlimited fire count: the NaN reappears after the rollback
    let plan = FaultPlan::parse("nan-loss-at-step=3").unwrap();
    let err = rex_faults::with_plan(plan, || {
        run(config(2, 10, ft), &data, &m, &mut Recorder::disabled()).unwrap_err()
    });
    let _ = std::fs::remove_file(tmp("double_trip"));
    match err {
        TrainError::NonFinite { step, ref what, .. } => {
            assert_eq!(step, 3);
            assert!(what.contains("again after rollback"), "{what}");
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn rollback_requires_checkpointing() {
    let data = synth_cifar10(2, 1, 60);
    let m = model(61);
    let ft = FtConfig {
        guard: GuardPolicy::Rollback,
        ..FtConfig::default()
    };
    let err = rex_faults::with_plan(FaultPlan::default(), || {
        run(config(1, 20, ft), &data, &m, &mut Recorder::disabled()).unwrap_err()
    });
    assert!(
        matches!(err, TrainError::Config(ref msg) if msg.contains("rollback")),
        "{err:?}"
    );
}

#[test]
fn resume_rejects_a_mismatched_run() {
    let data = synth_cifar10(4, 2, 62);
    let path = tmp("mismatch");
    let ft = FtConfig {
        checkpoint_every: Some(2),
        checkpoint_path: Some(path.clone()),
        halt_after_step: Some(2),
        ..FtConfig::default()
    };
    let m = model(63);
    let err = rex_faults::with_plan(FaultPlan::default(), || {
        run(config(2, 10, ft), &data, &m, &mut Recorder::disabled()).unwrap_err()
    });
    assert!(matches!(err, TrainError::Halted { step: 2 }), "{err:?}");

    // resuming with a different seed must be refused
    let mut cfg = config(
        2,
        10,
        FtConfig {
            resume_from: Some(path.clone()),
            ..FtConfig::default()
        },
    );
    cfg.seed = 44;
    let m2 = model(63);
    let err = rex_faults::with_plan(FaultPlan::default(), || {
        run(cfg, &data, &m2, &mut Recorder::disabled()).unwrap_err()
    });
    assert!(
        matches!(err, TrainError::Resume(ref msg) if msg.contains("seed")),
        "{err:?}"
    );
    let _ = std::fs::remove_file(path);
}

#[test]
fn stateful_schedules_refuse_checkpointing() {
    let data = synth_cifar10(2, 1, 64);
    let m = model(65);
    let mut cfg = config(
        1,
        20,
        FtConfig {
            checkpoint_every: Some(1),
            checkpoint_path: Some(tmp("plateau")),
            ..FtConfig::default()
        },
    );
    cfg.schedule = ScheduleSpec::DecayOnPlateau(1);
    let err = rex_faults::with_plan(FaultPlan::default(), || {
        run(cfg, &data, &m, &mut Recorder::disabled()).unwrap_err()
    });
    assert!(
        matches!(err, TrainError::Config(ref msg) if msg.contains("validation feedback")),
        "{err:?}"
    );
}
