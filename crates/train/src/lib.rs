//! # rex-train — the budgeted-training harness
//!
//! Ties the whole stack together: datasets from [`rex_data`], models from
//! [`rex_nn`], optimizers from [`rex_optim`], and schedules from
//! [`rex_core`] meet in a training loop that implements the paper's
//! budgeted protocol:
//!
//! * a [`Budget`] is a percentage of a setting's maximum epochs (rounded
//!   up, as the paper's YOLO setting specifies);
//! * the schedule sees only the *budgeted* horizon — a 1 % run decays to
//!   ~0 within its 1 %;
//! * the LR (and momentum, for OneCycle) is updated **every iteration**
//!   from the schedule;
//! * decay-on-plateau receives per-epoch validation losses;
//! * results are averaged over independent trials
//!   ([`trial::run_trials`]), each with its own seed.
//!
//! The per-setting experiment drivers (classification, VAE, detection,
//! transformer fine-tuning) live in [`tasks`].

#![warn(missing_docs)]

mod budget;
mod error;
pub mod lineage;
pub mod range_test;
pub mod settings;
pub mod snapshot;
pub mod tasks;
mod trainer;
pub mod trial;

pub use budget::Budget;
pub use error::TrainError;
pub use lineage::{Lineage, LoadReport};
pub use snapshot::TrainState;
pub use trainer::{
    classification_loss, evaluate_classifier, EpochStats, FtConfig, GuardPolicy, OptimizerKind,
    TrainConfig, TrainResult, Trainer,
};
pub use trial::EarlyStopping;
