//! The learning-rate range test (Smith, 2018) — the standard procedure for
//! choosing the initial LR that every schedule in the paper then decays
//! from. The LR is swept exponentially from `lr_min` to `lr_max` over one
//! pass while recording the training loss; the suggested LR is the point
//! of steepest descent, a decade below the divergence point.

use rex_autograd::Graph;
use rex_data::batches;
use rex_nn::Module;
use rex_optim::{global_grad_norm, global_param_norm};
use rex_telemetry::{Event, Recorder, StepRecord};
use rex_tensor::{Prng, Tensor, TensorError};

use crate::trainer::OptimizerKind;

/// One `(lr, loss)` observation of the sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangePoint {
    /// Learning rate at this step.
    pub lr: f32,
    /// Smoothed training loss at this step.
    pub loss: f64,
}

/// Result of a range test.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeTestResult {
    /// The full sweep curve.
    pub curve: Vec<RangePoint>,
    /// LR at the steepest loss descent (the classic suggestion).
    pub suggested_lr: f32,
    /// LR where the loss first exceeded 4× its minimum (divergence), if
    /// reached.
    pub diverged_at: Option<f32>,
}

/// Runs an LR range test for a classifier: sweeps the LR exponentially
/// from `lr_min` to `lr_max` over `steps` iterations (cycling through the
/// dataset as needed) and analyses the smoothed loss curve.
///
/// # Errors
///
/// Propagates [`TensorError`]s from the model; also fails if `steps == 0`
/// (reported as an invalid-geometry error for interface uniformity).
///
/// # Panics
///
/// Panics if `lr_min <= 0`, `lr_max <= lr_min`, or the dataset is empty.
#[allow(clippy::too_many_arguments)]
pub fn lr_range_test(
    model: &dyn Module,
    images: &Tensor,
    labels: &[usize],
    optimizer: OptimizerKind,
    lr_min: f32,
    lr_max: f32,
    steps: usize,
    batch_size: usize,
    seed: u64,
) -> Result<RangeTestResult, TensorError> {
    lr_range_test_traced(
        model,
        images,
        labels,
        optimizer,
        lr_min,
        lr_max,
        steps,
        batch_size,
        seed,
        &mut Recorder::disabled(),
    )
}

/// [`lr_range_test`] with telemetry: emits one [`StepRecord`] per sweep
/// step (LR, smoothed loss, gradient/parameter norms) plus the suggested
/// LR as the run metric.
///
/// # Errors
///
/// Same as [`lr_range_test`].
///
/// # Panics
///
/// Same as [`lr_range_test`].
#[allow(clippy::too_many_arguments)]
pub fn lr_range_test_traced(
    model: &dyn Module,
    images: &Tensor,
    labels: &[usize],
    optimizer: OptimizerKind,
    lr_min: f32,
    lr_max: f32,
    steps: usize,
    batch_size: usize,
    seed: u64,
    rec: &mut Recorder,
) -> Result<RangeTestResult, TensorError> {
    assert!(lr_min > 0.0 && lr_max > lr_min, "need 0 < lr_min < lr_max");
    assert!(!labels.is_empty(), "empty dataset");
    if steps == 0 {
        return Err(TensorError::InvalidGeometry {
            reason: "range test needs at least one step".into(),
        });
    }
    let mut opt = optimizer.build(model.params(), lr_min);
    let traced = rec.is_enabled();
    opt.set_instrumented(traced);
    rec.emit(Event::RunStart {
        run: "range_test".to_owned(),
        schedule: "ExponentialSweep".to_owned(),
        optimizer: optimizer.name().to_owned(),
        seed,
        total_samples: (steps * batch_size) as u64,
    });
    let mut rng = Prng::new(seed);
    let ratio = (lr_max / lr_min).ln(); // f32
    let mut curve = Vec::with_capacity(steps);
    let mut smoothed = 0.0f64;
    let beta = 0.9f64;
    let mut best = f64::INFINITY;
    let mut diverged_at = None;

    let mut t = 0usize;
    'outer: loop {
        for batch in batches(images, labels, batch_size, Some(&mut rng)) {
            if t >= steps {
                break 'outer;
            }
            let lr = lr_min * ((t as f32 / steps as f32) * ratio).exp();
            opt.set_lr(lr);
            opt.zero_grad();
            let mut g = Graph::new(true);
            let x = g.constant(batch.images);
            let logits = model.forward(&mut g, x)?;
            let loss = g.cross_entropy(logits, &batch.labels)?;
            let raw = g.value(loss).item() as f64;
            g.backward(loss)?;
            let grad_norm = if traced {
                global_grad_norm(opt.params())
            } else {
                0.0
            };
            opt.step();

            smoothed = if t == 0 {
                raw
            } else {
                beta * smoothed + (1.0 - beta) * raw
            };
            let debiased = smoothed / (1.0 - beta.powi(t as i32 + 1));
            if traced {
                rec.emit(Event::Step(StepRecord {
                    step: t as u64,
                    epoch: 0,
                    batch_id: t as u64,
                    lr: lr as f64,
                    loss: debiased,
                    grad_norm: grad_norm as f64,
                    param_norm: global_param_norm(opt.params()) as f64,
                    elapsed_ns: 0,
                }));
            }
            curve.push(RangePoint { lr, loss: debiased });
            best = best.min(debiased);
            if diverged_at.is_none() && debiased > 4.0 * best && t > steps / 10 {
                diverged_at = Some(lr);
                break 'outer; // standard early stop on divergence
            }
            t += 1;
        }
    }

    // steepest descent of the smoothed curve, measured over a window of
    // several points (adjacent differences are too noisy) and skipping the
    // first tenth of the sweep where the EMA is still settling
    let window = (curve.len() / 20).max(3);
    let skip = curve.len() / 10;
    let mut suggested = curve.first().map(|p| p.lr).unwrap_or(lr_min);
    let mut steepest = 0.0f64;
    for i in skip..curve.len().saturating_sub(window) {
        let slope = curve[i].loss - curve[i + window].loss; // positive = descending
        if slope > steepest {
            steepest = slope;
            suggested = curve[i + window / 2].lr;
        }
    }
    rec.emit(Event::RunEnd {
        metric: suggested as f64,
    });
    rec.flush();
    Ok(RangeTestResult {
        curve,
        suggested_lr: suggested,
        diverged_at,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_data::images::synth_cifar10;
    use rex_nn::Mlp;

    fn flat(t: &Tensor) -> Tensor {
        let n = t.shape()[0];
        let d: usize = t.shape()[1..].iter().product();
        t.reshape(&[n, d]).unwrap()
    }

    #[test]
    fn sweep_covers_requested_range() {
        let data = synth_cifar10(6, 2, 0);
        let mut rng = Prng::new(1);
        let m = Mlp::new("m", &[3 * 12 * 12, 16, 10], &mut rng);
        let r = lr_range_test(
            &m,
            &flat(&data.train_images),
            &data.train_labels,
            OptimizerKind::sgdm(),
            1e-4,
            1.0,
            30,
            16,
            7,
        )
        .unwrap();
        assert!(!r.curve.is_empty());
        assert!((r.curve[0].lr - 1e-4).abs() < 1e-6);
        // suggestion lies inside the sweep range
        assert!(r.suggested_lr >= 1e-4 && r.suggested_lr <= 1.0);
    }

    #[test]
    fn absurd_lr_max_triggers_divergence_detection() {
        let data = synth_cifar10(6, 2, 1);
        let mut rng = Prng::new(2);
        let m = Mlp::new("m", &[3 * 12 * 12, 16, 10], &mut rng);
        let r = lr_range_test(
            &m,
            &flat(&data.train_images),
            &data.train_labels,
            OptimizerKind::sgdm(),
            1e-3,
            1e4, // absurd: must blow up
            120,
            16,
            7,
        )
        .unwrap();
        assert!(
            r.diverged_at.is_some(),
            "sweeping to lr 1e4 should diverge; curve end {:?}",
            r.curve.last()
        );
    }

    #[test]
    fn zero_steps_is_an_error() {
        let data = synth_cifar10(2, 1, 2);
        let mut rng = Prng::new(3);
        let m = Mlp::new("m", &[3 * 12 * 12, 4, 10], &mut rng);
        assert!(lr_range_test(
            &m,
            &flat(&data.train_images),
            &data.train_labels,
            OptimizerKind::sgdm(),
            1e-4,
            1.0,
            0,
            8,
            0,
        )
        .is_err());
    }
}
