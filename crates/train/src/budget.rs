/// A training budget: a percentage of a setting's maximum epoch count.
///
/// The paper evaluates every setting at 1 %, 5 %, 10 %, 25 %, 50 %, and
/// 100 % of its literature-standard maximum epochs, rounding the epoch
/// count **up** (so the 1 % budget of a 50-epoch setting is 1 epoch, and no
/// budget is ever zero).
///
/// ```
/// use rex_train::Budget;
///
/// let b = Budget::new(50, 1);
/// assert_eq!(b.epochs(), 1);
/// assert_eq!(Budget::new(300, 25).epochs(), 75);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    max_epochs: usize,
    pct: u32,
}

impl Budget {
    /// Budget of `pct` percent of `max_epochs`.
    ///
    /// # Panics
    ///
    /// Panics if `max_epochs == 0` or `pct` is 0 or above 100.
    pub fn new(max_epochs: usize, pct: u32) -> Self {
        assert!(max_epochs > 0, "max epochs must be positive");
        assert!(
            (1..=100).contains(&pct),
            "budget must be 1..=100 %, got {pct}"
        );
        Budget { max_epochs, pct }
    }

    /// The budgeted epoch count (rounded up, never zero).
    pub fn epochs(&self) -> usize {
        (self.max_epochs * self.pct as usize).div_ceil(100)
    }

    /// The percentage.
    pub fn pct(&self) -> u32 {
        self.pct
    }

    /// The setting's maximum epochs.
    pub fn max_epochs(&self) -> usize {
        self.max_epochs
    }

    /// The paper's six budget levels for a given maximum epoch count.
    pub fn paper_levels(max_epochs: usize) -> Vec<Budget> {
        [1, 5, 10, 25, 50, 100]
            .into_iter()
            .map(|pct| Budget::new(max_epochs, pct))
            .collect()
    }
}

impl std::fmt::Display for Budget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}% ({} ep)", self.pct, self.epochs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_up_and_never_zero() {
        assert_eq!(Budget::new(50, 1).epochs(), 1);
        assert_eq!(Budget::new(300, 1).epochs(), 3);
        assert_eq!(Budget::new(3, 1).epochs(), 1);
        assert_eq!(Budget::new(200, 5).epochs(), 10);
    }

    #[test]
    fn full_budget_is_max() {
        assert_eq!(Budget::new(90, 100).epochs(), 90);
    }

    #[test]
    fn paper_levels_are_six() {
        let levels = Budget::paper_levels(300);
        assert_eq!(levels.len(), 6);
        let epochs: Vec<usize> = levels.iter().map(Budget::epochs).collect();
        assert_eq!(epochs, vec![3, 15, 30, 75, 150, 300]);
    }

    #[test]
    #[should_panic(expected = "budget must be")]
    fn rejects_zero_pct() {
        let _ = Budget::new(100, 0);
    }

    #[test]
    fn displays_pct_and_epochs() {
        assert_eq!(format!("{}", Budget::new(300, 25)), "25% (75 ep)");
    }
}
