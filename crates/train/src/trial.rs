//! Multi-trial execution and learning-rate tuning.

/// Runs `n` independent trials, seeding each as `base_seed + index`, and
/// returns the metric values. (Single-threaded: the reproduction targets a
/// one-core budget; the closure owns all per-trial state.)
pub fn run_trials(n: usize, base_seed: u64, mut run: impl FnMut(u64) -> f64) -> Vec<f64> {
    (0..n).map(|i| run(base_seed + i as u64)).collect()
}

/// The paper's LR grid: the base LR times multiples of 3
/// (`…, 1/9, 1/3, 1, 3, 9, …` — here two steps each way).
pub fn lr_grid(base_lr: f32) -> Vec<f32> {
    vec![
        base_lr / 9.0,
        base_lr / 3.0,
        base_lr,
        base_lr * 3.0,
        base_lr * 9.0,
    ]
}

/// Evaluates `run` at every LR in `grid` and returns the best
/// `(lr, metric)` pair.
///
/// # Panics
///
/// Panics if `grid` is empty or a metric is NaN.
pub fn tune_lr(grid: &[f32], lower_is_better: bool, mut run: impl FnMut(f32) -> f64) -> (f32, f64) {
    assert!(!grid.is_empty(), "LR grid must be non-empty");
    let mut best: Option<(f32, f64)> = None;
    for &lr in grid {
        let metric = run(lr);
        assert!(!metric.is_nan(), "metric is NaN at lr {lr}");
        let better = match best {
            None => true,
            Some((_, b)) => {
                if lower_is_better {
                    metric < b
                } else {
                    metric > b
                }
            }
        };
        if better {
            best = Some((lr, metric));
        }
    }
    best.expect("non-empty grid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trials_use_distinct_seeds() {
        let mut seeds = Vec::new();
        let out = run_trials(3, 100, |s| {
            seeds.push(s);
            s as f64
        });
        assert_eq!(seeds, vec![100, 101, 102]);
        assert_eq!(out, vec![100.0, 101.0, 102.0]);
    }

    #[test]
    fn lr_grid_spans_two_multiples_of_three_each_way() {
        let g = lr_grid(0.9);
        assert_eq!(g.len(), 5);
        assert!((g[0] - 0.1).abs() < 1e-6);
        assert!((g[4] - 8.1).abs() < 1e-6);
    }

    #[test]
    fn tune_lr_picks_minimum() {
        // quadratic with minimum at lr = 0.3
        let (lr, m) = tune_lr(&lr_grid(0.3), true, |lr| ((lr - 0.3) as f64).powi(2));
        assert!((lr - 0.3).abs() < 1e-6);
        assert!(m.abs() < 1e-12);
    }

    #[test]
    fn tune_lr_maximizes_when_flagged() {
        let (lr, _) = tune_lr(&[0.1, 0.2, 0.3], false, |lr| lr as f64);
        assert!((lr - 0.3).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_grid_panics() {
        let _ = tune_lr(&[], true, |_| 0.0);
    }
}

/// Early stopping on a validation metric: signals stop after `patience`
/// consecutive reports without improvement of at least `min_delta`.
///
/// This is an *extension* utility — the paper's protocol always trains for
/// the full budget (stopping early would change the budget semantics) —
/// but downstream users combining REX with early stopping need it.
#[derive(Debug, Clone, PartialEq)]
pub struct EarlyStopping {
    patience: u32,
    min_delta: f64,
    lower_is_better: bool,
    best: Option<f64>,
    stale: u32,
}

impl EarlyStopping {
    /// New monitor; `lower_is_better` selects the improvement direction.
    ///
    /// # Panics
    ///
    /// Panics if `patience == 0`.
    pub fn new(patience: u32, min_delta: f64, lower_is_better: bool) -> Self {
        assert!(patience > 0, "patience must be positive");
        EarlyStopping {
            patience,
            min_delta,
            lower_is_better,
            best: None,
            stale: 0,
        }
    }

    /// Reports a new metric value; returns `true` when training should
    /// stop.
    pub fn should_stop(&mut self, metric: f64) -> bool {
        let improved = match self.best {
            None => true,
            Some(best) => {
                if self.lower_is_better {
                    metric < best - self.min_delta
                } else {
                    metric > best + self.min_delta
                }
            }
        };
        if improved {
            self.best = Some(metric);
            self.stale = 0;
        } else {
            self.stale += 1;
        }
        self.stale >= self.patience
    }

    /// Best metric seen so far.
    pub fn best(&self) -> Option<f64> {
        self.best
    }
}

#[cfg(test)]
mod early_stop_tests {
    use super::*;

    #[test]
    fn stops_after_patience_without_improvement() {
        let mut es = EarlyStopping::new(2, 0.0, true);
        assert!(!es.should_stop(1.0));
        assert!(!es.should_stop(1.0)); // stale 1
        assert!(es.should_stop(1.0)); // stale 2 -> stop
    }

    #[test]
    fn improvement_resets_counter() {
        let mut es = EarlyStopping::new(2, 0.0, true);
        assert!(!es.should_stop(1.0));
        assert!(!es.should_stop(1.0));
        assert!(!es.should_stop(0.5)); // improvement
        assert!(!es.should_stop(0.5));
        assert!(es.should_stop(0.5));
        assert_eq!(es.best(), Some(0.5));
    }

    #[test]
    fn higher_is_better_direction() {
        let mut es = EarlyStopping::new(1, 0.0, false);
        assert!(!es.should_stop(50.0));
        assert!(!es.should_stop(60.0));
        assert!(es.should_stop(55.0));
    }

    #[test]
    fn min_delta_requires_meaningful_improvement() {
        let mut es = EarlyStopping::new(1, 0.1, true);
        assert!(!es.should_stop(1.0));
        assert!(es.should_stop(0.95), "0.05 improvement is below min_delta");
    }
}
