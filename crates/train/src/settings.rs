//! Named experimental settings, shared by every front end.
//!
//! Historically the CLI owned the mapping from a setting name
//! (`rn20-cifar10`, `vae-mnist`, …) to a model, a synthetic dataset, a
//! maximum epoch count, and an LR scale. With the HTTP front door
//! (`rexctl serve`) that mapping must live in one place: a job submitted
//! over a socket has to run *exactly* the code a `rexctl train` invocation
//! runs, or the two can never produce byte-identical traces. This module
//! is that single place.
//!
//! The `digits-mlp` setting is the cheapest cell in the catalogue (a
//! 144-24-10 MLP on synthetic 12×12 digits, ~8 optimizer steps per
//! epoch) — the workhorse for load tests and serving benchmarks where
//! hundreds of concurrent budgeted jobs have to finish in seconds.

use rex_core::ScheduleSpec;
use rex_data::digits::synth_digits;
use rex_data::images::{synth_cifar10, synth_cifar100, synth_stl10};
use rex_data::ClassificationDataset;
use rex_nn::Mlp;
use rex_telemetry::Recorder;
use rex_tensor::{DType, Prng};

use crate::error::TrainError;
use crate::tasks::{run_image_cell_ft, run_vae_cell_traced, ImageModel};
use crate::trainer::{FtConfig, OptimizerKind, TrainConfig, Trainer};
use crate::Budget;

/// A named experimental setting: everything needed to run one budgeted
/// cell except the budget, schedule, optimizer, and seed.
pub enum SettingSpec {
    /// An image-classification setting (ResNet/WRN/VGG analogue).
    Image {
        /// Display name (`"RN20-CIFAR10"`, …).
        name: &'static str,
        /// Architecture to build.
        model: ImageModel,
        /// Synthetic dataset (seeded deterministically from the run seed).
        data: ClassificationDataset,
        /// Literature-standard maximum epochs (budgets are % of this).
        max_epochs: usize,
        /// Multiplier on the optimizer's default LR.
        lr_scale: f32,
    },
    /// The VAE-MNIST analogue (no checkpoint support yet).
    Vae {
        /// Maximum epochs.
        max_epochs: usize,
    },
    /// A tiny digits MLP — the cheapest cell, for load tests and serving
    /// benchmarks. Full fault-tolerance support.
    Digits {
        /// Maximum epochs.
        max_epochs: usize,
    },
}

/// Setting names accepted by [`load_setting`], in display order.
pub const SETTING_NAMES: &[&str] = &[
    "rn20-cifar10",
    "rn38-cifar10",
    "wrn-stl10",
    "vgg16-cifar100",
    "vae-mnist",
    "digits-mlp",
];

/// Resolves a setting name (case-insensitive) into a [`SettingSpec`],
/// synthesizing its dataset from `seed`.
///
/// # Errors
///
/// Returns a message naming the unknown setting.
pub fn load_setting(name: &str, seed: u64) -> Result<SettingSpec, String> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "rn20-cifar10" => SettingSpec::Image {
            name: "RN20-CIFAR10",
            model: ImageModel::MicroResNet20,
            data: synth_cifar10(40, 15, seed ^ 0x7AB4),
            max_epochs: 24,
            lr_scale: 1.0,
        },
        "rn38-cifar10" => SettingSpec::Image {
            name: "RN38-CIFAR10",
            model: ImageModel::MicroResNet38,
            data: synth_cifar10(40, 15, seed ^ 0x7AB4),
            max_epochs: 24,
            lr_scale: 1.0,
        },
        "wrn-stl10" => SettingSpec::Image {
            name: "WRN-STL10",
            model: ImageModel::MicroWide(2),
            data: synth_stl10(25, 10, seed ^ 0x57110),
            max_epochs: 20,
            lr_scale: 1.0,
        },
        "vgg16-cifar100" => SettingSpec::Image {
            name: "VGG16-CIFAR100",
            model: ImageModel::MicroVgg(12),
            data: synth_cifar100(20, 30, 10, seed ^ 0xC1F100),
            max_epochs: 40,
            lr_scale: 0.1,
        },
        "vae-mnist" => SettingSpec::Vae { max_epochs: 200 },
        "digits-mlp" | "digits" => SettingSpec::Digits { max_epochs: 8 },
        other => return Err(format!("unknown setting {other:?} (see rexctl help)")),
    })
}

impl SettingSpec {
    /// Display name of the setting.
    pub fn name(&self) -> &'static str {
        match self {
            SettingSpec::Image { name, .. } => name,
            SettingSpec::Vae { .. } => "VAE-MNIST",
            SettingSpec::Digits { .. } => "DIGITS-MLP",
        }
    }

    /// Literature-standard maximum epochs; budgets are percentages of
    /// this.
    pub fn max_epochs(&self) -> usize {
        match self {
            SettingSpec::Image { max_epochs, .. }
            | SettingSpec::Vae { max_epochs }
            | SettingSpec::Digits { max_epochs } => *max_epochs,
        }
    }

    /// Whether checkpoint/resume/guard knobs are supported.
    pub fn supports_ft(&self) -> bool {
        !matches!(self, SettingSpec::Vae { .. })
    }

    /// The headline metric's name (`"test error"` / `"test loss"`).
    pub fn metric_label(&self) -> &'static str {
        match self {
            SettingSpec::Image { .. } | SettingSpec::Digits { .. } => "test error",
            SettingSpec::Vae { .. } => "test loss",
        }
    }

    /// The default initial LR for this setting under `optimizer`.
    pub fn default_lr(&self, optimizer: &OptimizerKind) -> f32 {
        match self {
            SettingSpec::Image { lr_scale, .. } => optimizer.default_lr() * lr_scale,
            SettingSpec::Vae { .. } => 1e-2,
            SettingSpec::Digits { .. } => 0.1,
        }
    }

    /// Runs one budgeted cell of this setting and returns its headline
    /// metric. This is the *only* cell runner: `rexctl train` and the
    /// HTTP job executor both call it, so a job produces the same
    /// trajectory — and, traced, the same trace bytes — no matter which
    /// front end submitted it.
    ///
    /// # Errors
    ///
    /// [`TrainError::Config`] when fault-tolerance knobs are set for a
    /// setting without snapshot support; otherwise whatever the
    /// underlying cell runner surfaces.
    #[allow(clippy::too_many_arguments)]
    pub fn run_ft(
        &self,
        budget_pct: u32,
        optimizer: OptimizerKind,
        schedule: ScheduleSpec,
        lr: f32,
        seed: u64,
        dtype: DType,
        ft: FtConfig,
        rec: &mut Recorder,
    ) -> Result<f64, TrainError> {
        let budget = Budget::new(self.max_epochs(), budget_pct);
        match self {
            SettingSpec::Image { model, data, .. } => run_image_cell_ft(
                *model,
                data,
                budget.epochs(),
                32,
                optimizer,
                schedule,
                lr,
                seed,
                dtype,
                ft,
                rec,
            ),
            SettingSpec::Vae { .. } => {
                if ft_is_active(&ft) {
                    return Err(TrainError::Config(
                        "checkpoint/resume/guard flags support image and digits settings; \
                         the VAE path has no snapshot support yet"
                            .to_owned(),
                    ));
                }
                if dtype != DType::F32 {
                    return Err(TrainError::Config(
                        "--dtype supports image and digits settings; the VAE path \
                         stores f32 only"
                            .to_owned(),
                    ));
                }
                let train = synth_digits(400, 12, seed ^ 0xD161);
                let test = synth_digits(150, 12, seed ^ 0xD162);
                Ok(run_vae_cell_traced(
                    &train,
                    &test,
                    budget.epochs(),
                    8,
                    optimizer,
                    schedule,
                    lr,
                    seed,
                    rec,
                )?)
            }
            SettingSpec::Digits { .. } => {
                let train = synth_digits(120, 12, seed ^ 0xD1_6217);
                let test = synth_digits(40, 12, seed ^ 0xD1_6218);
                let mut rng = Prng::new(seed);
                let model = Mlp::new("m", &[144, 24, 10], &mut rng);
                let mut trainer = Trainer::new(TrainConfig {
                    epochs: budget.epochs(),
                    batch_size: 16,
                    lr,
                    optimizer,
                    schedule,
                    augment: false,
                    grad_clip: None,
                    seed: seed ^ 0x7EA1,
                    dtype,
                    ft,
                });
                Ok(trainer
                    .train_classifier_traced(
                        &model,
                        &train.images,
                        &train.labels,
                        &test.images,
                        &test.labels,
                        rec,
                    )?
                    .final_metric)
            }
        }
    }
}

/// Whether any fault-tolerance knob is switched on.
pub fn ft_is_active(ft: &FtConfig) -> bool {
    ft.checkpoint_every.is_some()
        || ft.resume_from.is_some()
        || ft.guard != crate::GuardPolicy::Off
        || ft.halt_after_step.is_some()
        || ft.stop_flag.is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_telemetry::{MemorySink, Recorder};

    #[test]
    fn every_catalogued_name_loads() {
        for name in SETTING_NAMES {
            let spec = load_setting(name, 7).unwrap();
            assert!(spec.max_epochs() > 0);
            assert!(!spec.name().is_empty());
        }
        assert!(load_setting("warp-drive", 7).is_err());
    }

    #[test]
    fn digits_cell_trains_and_traces() {
        let spec = load_setting("digits-mlp", 11).unwrap();
        assert!(spec.supports_ft());
        let sink = MemorySink::unbounded();
        let handle = sink.handle();
        let mut rec = Recorder::new(Box::new(sink));
        let err = spec
            .run_ft(
                25,
                OptimizerKind::sgdm(),
                ScheduleSpec::Rex,
                spec.default_lr(&OptimizerKind::sgdm()),
                11,
                DType::F32,
                FtConfig::default(),
                &mut rec,
            )
            .unwrap();
        assert!((0.0..=100.0).contains(&err), "{err}");
        // 25% of 8 epochs = 2 epochs × 8 batches (120 samples / 16,
        // partial final batch of 8) = 16 steps
        assert_eq!(handle.steps().len(), 16);
    }

    #[test]
    fn digits_cell_is_deterministic_across_runs() {
        let metric = |seed| {
            let spec = load_setting("digits", seed).unwrap();
            spec.run_ft(
                25,
                OptimizerKind::sgdm(),
                ScheduleSpec::Rex,
                0.1,
                seed,
                DType::F32,
                FtConfig::default(),
                &mut Recorder::disabled(),
            )
            .unwrap()
        };
        assert_eq!(metric(3).to_bits(), metric(3).to_bits());
    }

    #[test]
    fn stop_flag_halts_a_digits_run() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let spec = load_setting("digits-mlp", 5).unwrap();
        let flag = Arc::new(AtomicBool::new(true)); // pre-set: halts after step 1
        let err = spec
            .run_ft(
                100,
                OptimizerKind::sgdm(),
                ScheduleSpec::Rex,
                0.1,
                5,
                DType::F32,
                FtConfig {
                    stop_flag: Some(Arc::clone(&flag)),
                    ..FtConfig::default()
                },
                &mut Recorder::disabled(),
            )
            .unwrap_err();
        assert!(
            matches!(err, TrainError::Halted { step: 1 }),
            "expected Halted after the first completed step, got {err}"
        );
        flag.store(false, Ordering::Release);
    }

    #[test]
    fn vae_rejects_ft_knobs() {
        let spec = load_setting("vae-mnist", 1).unwrap();
        assert!(!spec.supports_ft());
        let err = spec
            .run_ft(
                1,
                OptimizerKind::sgdm(),
                ScheduleSpec::Rex,
                1e-2,
                1,
                DType::F32,
                FtConfig {
                    halt_after_step: Some(3),
                    ..FtConfig::default()
                },
                &mut Recorder::disabled(),
            )
            .unwrap_err();
        assert!(matches!(err, TrainError::Config(_)), "{err}");
    }
}
