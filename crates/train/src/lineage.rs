//! Generational checkpoint lineage — crash recovery that survives a
//! corrupt snapshot.
//!
//! A single snapshot file is crash-*safe* (the atomic-write protocol
//! guarantees the previous generation survives a kill) but not
//! corruption-proof: silent media damage to the one file on disk strands
//! the run. A [`Lineage`] keeps the last *N* generations as
//! `state.00017.rexstate` files in one directory plus a crash-atomic
//! `LATEST` pointer naming the newest, and resume walks the generations
//! newest-first, validating each one's container checksum and section
//! decode, falling back generation-by-generation until a valid snapshot
//! is found. Every skipped generation gets a named reason in the
//! [`LoadReport`] so operators can see *why* the run resumed where it
//! did.
//!
//! Resuming from an older generation is correct by the same argument as
//! ordinary resume: a snapshot captures the complete deterministic state
//! at a step boundary, so replaying from generation *k* produces the
//! same trace bytes an uninterrupted run produces — the fallback only
//! costs recomputed steps, never divergence.

use crate::snapshot::TrainState;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Name of the pointer file naming the newest generation.
pub const LATEST_FILE: &str = "LATEST";

/// Why a generation was accepted or skipped during fallback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenerationStatus {
    /// Checksum and every section decode verified.
    Valid,
    /// The file ends early (torn or cut short on disk).
    Truncated,
    /// Checksum mismatch or undecodable section content.
    Corrupt,
    /// The file could not be read at all (I/O error).
    Unreadable,
}

impl fmt::Display for GenerationStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            GenerationStatus::Valid => "valid",
            GenerationStatus::Truncated => "truncated",
            GenerationStatus::Corrupt => "corrupt",
            GenerationStatus::Unreadable => "unreadable",
        })
    }
}

/// One generation's validation outcome.
#[derive(Debug, Clone)]
pub struct GenerationReport {
    /// Optimizer step the generation was captured at.
    pub step: u64,
    /// The generation file.
    pub path: PathBuf,
    /// Named outcome of validating it.
    pub status: GenerationStatus,
    /// The underlying error text for skipped generations.
    pub detail: String,
}

/// The full fallback walk: every generation tried, newest first. The
/// last entry (when resolution succeeded) is the `Valid` one resumed
/// from.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Validation attempts in the order they were made.
    pub attempts: Vec<GenerationReport>,
    /// What the `LATEST` pointer named, if it was readable.
    pub latest_hint: Option<String>,
}

impl LoadReport {
    /// Generations skipped before a valid one was found.
    pub fn fallbacks(&self) -> usize {
        self.attempts
            .iter()
            .filter(|a| a.status != GenerationStatus::Valid)
            .count()
    }

    /// The accepted generation, if any.
    pub fn resumed(&self) -> Option<&GenerationReport> {
        self.attempts
            .iter()
            .find(|a| a.status == GenerationStatus::Valid)
    }
}

impl fmt::Display for LoadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for a in &self.attempts {
            match a.status {
                GenerationStatus::Valid => {
                    write!(f, "generation {:05}: valid, resuming", a.step)?;
                }
                status => {
                    writeln!(
                        f,
                        "generation {:05}: {status} ({}), falling back",
                        a.step, a.detail
                    )?;
                }
            }
        }
        Ok(())
    }
}

/// A rotating directory of generational snapshots.
#[derive(Debug, Clone)]
pub struct Lineage {
    dir: PathBuf,
    keep: usize,
}

impl Lineage {
    /// A lineage rooted at `dir` retaining the newest `keep` generations
    /// (minimum 1).
    pub fn new(dir: impl Into<PathBuf>, keep: usize) -> Self {
        Lineage {
            dir: dir.into(),
            keep: keep.max(1),
        }
    }

    /// The lineage directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Writes `state` as a new generation, updates the `LATEST` pointer
    /// crash-atomically, and prunes generations beyond the retention
    /// count. Returns the generation file's path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (including injected ones) from the
    /// generation or pointer write; pruning failures are ignored (a
    /// leftover old generation is harmless).
    pub fn save(&self, state: &TrainState) -> io::Result<PathBuf> {
        let path = self.dir.join(generation_file(state.step));
        state.save(&path)?;
        let name = format!("{}\n", generation_file(state.step));
        rex_faults::atomic_write("latest", &self.dir.join(LATEST_FILE), name.as_bytes())?;
        if let Ok(gens) = generations(&self.dir) {
            for (_, old) in gens.iter().rev().skip(self.keep) {
                let _ = fs::remove_file(old);
            }
        }
        Ok(path)
    }

    /// Walks the generations newest-first, returning the newest snapshot
    /// that validates (checksum + full decode) together with its file
    /// path and the per-generation [`LoadReport`].
    ///
    /// # Errors
    ///
    /// `NotFound` when the directory holds no generations at all;
    /// `InvalidData` when every generation fails validation (the report's
    /// content is folded into the message).
    pub fn resolve(dir: &Path) -> io::Result<(TrainState, PathBuf, LoadReport)> {
        let mut report = LoadReport {
            attempts: Vec::new(),
            latest_hint: fs::read_to_string(dir.join(LATEST_FILE))
                .ok()
                .map(|s| s.trim().to_owned()),
        };
        let gens = generations(dir)?;
        if gens.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no checkpoint generations in {}", dir.display()),
            ));
        }
        for (step, path) in gens.into_iter().rev() {
            match TrainState::load(&path) {
                Ok(state) => {
                    report.attempts.push(GenerationReport {
                        step,
                        path: path.clone(),
                        status: GenerationStatus::Valid,
                        detail: String::new(),
                    });
                    return Ok((state, path, report));
                }
                Err(e) => {
                    let status = match e.kind() {
                        io::ErrorKind::UnexpectedEof => GenerationStatus::Truncated,
                        io::ErrorKind::InvalidData => GenerationStatus::Corrupt,
                        _ => GenerationStatus::Unreadable,
                    };
                    report.attempts.push(GenerationReport {
                        step,
                        path,
                        status,
                        detail: e.to_string(),
                    });
                }
            }
        }
        Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "every checkpoint generation in {} failed validation:\n{report}",
                dir.display()
            ),
        ))
    }
}

/// The generation files in `dir`, sorted by step ascending. Files not
/// matching `state.NNNNN.rexstate` (the `LATEST` pointer, temp siblings,
/// quarantined snapshots) are ignored.
pub fn generations(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(step) = parse_generation(&name.to_string_lossy()) else {
            continue;
        };
        out.push((step, entry.path()));
    }
    out.sort();
    Ok(out)
}

fn generation_file(step: u64) -> String {
    format!("state.{step:05}.rexstate")
}

fn parse_generation(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("state.")?.strip_suffix(".rexstate")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_optim::OptimizerState;
    use rex_tensor::{DType, Tensor};

    fn state_at(step: u64) -> TrainState {
        TrainState {
            run: "classifier".to_owned(),
            schedule: "REX".to_owned(),
            optimizer: "SGDM".to_owned(),
            seed: 7,
            total_samples: 640,
            batch_size: 16,
            epochs: 4,
            lr: 0.05,
            dtype: DType::F32,
            backend: "scalar".to_owned(),
            simd_level: "portable".to_owned(),
            epoch: 0,
            batch_in_epoch: step,
            step,
            samples_done: step * 16,
            epoch_loss: 1.0,
            epoch_batches: step,
            last_lr: 0.04,
            history: Vec::new(),
            rng: [step, 2, 3, 4],
            rng_epoch_start: [5, 6, 7, 8],
            trace_events: step + 1,
            model: vec![("w".to_owned(), Tensor::arange(0.0, 1.0, 4))],
            buffers: Vec::new(),
            optim: OptimizerState {
                kind: "sgd".to_owned(),
                scalars: vec![("t".to_owned(), step as f64)],
                tensors: Vec::new(),
            },
        }
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("rex_lineage_{name}_{}", std::process::id()))
    }

    #[test]
    fn save_rotates_and_prunes() {
        let dir = tmp("rotate");
        let _ = fs::remove_dir_all(&dir);
        let lineage = Lineage::new(&dir, 3);
        for step in [5, 10, 15, 20] {
            lineage.save(&state_at(step)).unwrap();
        }
        let gens = generations(&dir).unwrap();
        assert_eq!(
            gens.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![10, 15, 20],
            "oldest generation pruned"
        );
        let latest = fs::read_to_string(dir.join(LATEST_FILE)).unwrap();
        assert_eq!(latest.trim(), "state.00020.rexstate");
        let (state, path, report) = Lineage::resolve(&dir).unwrap();
        assert_eq!(state.step, 20);
        assert!(path.ends_with("state.00020.rexstate"));
        assert_eq!(report.fallbacks(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resolve_falls_back_over_damaged_generations() {
        let dir = tmp("fallback");
        let _ = fs::remove_dir_all(&dir);
        let lineage = Lineage::new(&dir, 3);
        for step in [5, 10, 15] {
            lineage.save(&state_at(step)).unwrap();
        }
        // newest truncated below the container header (UnexpectedEof),
        // second-newest bit-flipped (checksum mismatch)
        let newest = dir.join("state.00015.rexstate");
        let bytes = fs::read(&newest).unwrap();
        fs::write(&newest, &bytes[..10]).unwrap();
        let second = dir.join("state.00010.rexstate");
        let mut bytes = fs::read(&second).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&second, bytes).unwrap();

        let (state, path, report) = Lineage::resolve(&dir).unwrap();
        assert_eq!(state.step, 5);
        assert!(path.ends_with("state.00005.rexstate"));
        assert_eq!(report.fallbacks(), 2);
        assert_eq!(report.attempts[0].status, GenerationStatus::Truncated);
        assert_eq!(report.attempts[1].status, GenerationStatus::Corrupt);
        assert_eq!(report.resumed().unwrap().step, 5);
        assert_eq!(report.latest_hint.as_deref(), Some("state.00015.rexstate"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resolve_errors_name_every_generation_when_all_fail() {
        let dir = tmp("all_bad");
        let _ = fs::remove_dir_all(&dir);
        let lineage = Lineage::new(&dir, 2);
        for step in [3, 6] {
            lineage.save(&state_at(step)).unwrap();
        }
        for name in ["state.00003.rexstate", "state.00006.rexstate"] {
            fs::write(dir.join(name), b"not a snapshot").unwrap();
        }
        let err = Lineage::resolve(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("00006"), "{err}");
        assert!(err.to_string().contains("00003"), "{err}");

        let empty = tmp("empty");
        let _ = fs::remove_dir_all(&empty);
        fs::create_dir_all(&empty).unwrap();
        assert_eq!(
            Lineage::resolve(&empty).unwrap_err().kind(),
            io::ErrorKind::NotFound
        );
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&empty);
    }

    #[test]
    fn generation_names_parse_strictly() {
        assert_eq!(parse_generation("state.00017.rexstate"), Some(17));
        assert_eq!(parse_generation("state.123456.rexstate"), Some(123_456));
        for bad in [
            "LATEST",
            "state.rexstate",
            "state..rexstate",
            "state.12x.rexstate",
            ".state.00017.rexstate.tmp.1.2",
            "ckpt.00017.rexstate",
        ] {
            assert_eq!(parse_generation(bad), None, "{bad}");
        }
    }
}
