//! Full training-state snapshots — the resume half of fault tolerance.
//!
//! A [`TrainState`] captures everything [`Trainer`] needs to continue a
//! run bit-for-bit: model parameters, optimizer state (momentum velocity
//! or Adam moments + step count), sample-exact schedule progress, the
//! trainer RNG stream *and* the pre-shuffle RNG state of the current
//! epoch (so the in-flight epoch's batch order can be rebuilt), the
//! accumulated history, and the telemetry line cursor. Snapshots are
//! serialized into the `REXSTATE1` section container
//! ([`rex_nn::checkpoint::save_state`]) and written crash-consistently
//! via `rex_faults::atomic_write`.
//!
//! [`Trainer`]: crate::Trainer

use crate::trainer::EpochStats;
use rex_nn::checkpoint;
use rex_optim::OptimizerState;
use rex_tensor::{DType, Tensor};
use std::io;
use std::path::Path;

/// A complete, resumable picture of a training run at a step boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainState {
    /// Run label (e.g. `"classifier"`), for compatibility checking.
    pub run: String,
    /// Schedule display name at capture time.
    pub schedule: String,
    /// Optimizer family name (`"SGDM"`, `"Adam"`, `"AdamW"`).
    pub optimizer: String,
    /// RNG seed of the run.
    pub seed: u64,
    /// Budgeted sample horizon the schedule decays over.
    pub total_samples: u64,
    /// Mini-batch size.
    pub batch_size: u64,
    /// Configured epoch count.
    pub epochs: u64,
    /// Initial learning rate η₀ (bit pattern compared on resume).
    pub lr: f32,
    /// Parameter storage precision. Governs the tensor-section codec:
    /// `f32` keeps the legacy byte-identical layout, `f16`/`bf16` store
    /// one `u16` per element. Resume refuses a dtype mismatch — the
    /// stored bits are not losslessly re-interpretable across dtypes.
    pub dtype: DType,
    /// Compute backend that produced the snapshot (`"scalar"`/`"simd"`).
    /// Provenance only: recorded so a resumed-elsewhere divergence can be
    /// diagnosed, never compared on resume.
    pub backend: String,
    /// SIMD dispatch level at capture time (e.g. `"avx2+fma"`,
    /// `"portable"`). Provenance only, like `backend`.
    pub simd_level: String,
    /// Epoch in flight when the snapshot was taken.
    pub epoch: u64,
    /// Batches of the in-flight epoch already consumed.
    pub batch_in_epoch: u64,
    /// Optimizer steps completed.
    pub step: u64,
    /// Samples consumed (the schedule's budget clock).
    pub samples_done: u64,
    /// Loss accumulated over the in-flight epoch so far.
    pub epoch_loss: f64,
    /// Batches accumulated into `epoch_loss`.
    pub epoch_batches: u64,
    /// Learning rate applied at the last completed step.
    pub last_lr: f32,
    /// Per-epoch history of completed epochs.
    pub history: Vec<EpochStats>,
    /// Trainer RNG stream state at capture time (post-shuffle,
    /// post-augmentation of every completed batch).
    pub rng: [u64; 4],
    /// Trainer RNG state immediately *before* the in-flight epoch's
    /// shuffle — replaying it rebuilds the epoch's exact batch order.
    pub rng_epoch_start: [u64; 4],
    /// Deterministic telemetry events emitted so far; a resumed run
    /// truncates its JSONL trace to this many lines and appends.
    pub trace_events: u64,
    /// Model parameters by name.
    pub model: Vec<(String, Tensor)>,
    /// Non-trainable model state by name (batch-norm running
    /// statistics): gradient-free, but eval-mode inference depends on it.
    pub buffers: Vec<(String, Tensor)>,
    /// Optimizer internals (velocity / moments / step counter).
    pub optim: OptimizerState,
}

impl TrainState {
    /// Writes the snapshot to `path` crash-consistently (temp file +
    /// fsync + atomic rename; a kill mid-write leaves the previous
    /// snapshot intact).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (including injected ones).
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let sections = vec![
            ("meta".to_owned(), self.encode_meta()),
            ("loop".to_owned(), self.encode_loop()),
            ("rng".to_owned(), self.encode_rng()),
            ("trace".to_owned(), self.trace_events.to_le_bytes().to_vec()),
            (
                "model".to_owned(),
                checkpoint::encode_entries_dtype(&self.model, self.dtype),
            ),
            (
                "buffers".to_owned(),
                checkpoint::encode_entries_dtype(&self.buffers, self.dtype),
            ),
            ("optim".to_owned(), encode_optim(&self.optim, self.dtype)),
        ];
        checkpoint::save_state(path, &sections)
    }

    /// Reads a snapshot back, verifying the container checksum and every
    /// section's internal structure.
    ///
    /// # Errors
    ///
    /// `InvalidData`/`UnexpectedEof` on corrupt or truncated files;
    /// propagates filesystem errors.
    pub fn load(path: &Path) -> io::Result<TrainState> {
        let sections = checkpoint::load_state(path)?;
        let get = |name: &str| -> io::Result<&[u8]> {
            sections
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, b)| b.as_slice())
                .ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("state snapshot missing section {name:?}"),
                    )
                })
        };

        let mut state = TrainState {
            run: String::new(),
            schedule: String::new(),
            optimizer: String::new(),
            seed: 0,
            total_samples: 0,
            batch_size: 0,
            epochs: 0,
            lr: 0.0,
            dtype: DType::F32,
            backend: String::new(),
            simd_level: String::new(),
            epoch: 0,
            batch_in_epoch: 0,
            step: 0,
            samples_done: 0,
            epoch_loss: 0.0,
            epoch_batches: 0,
            last_lr: 0.0,
            history: Vec::new(),
            rng: [0; 4],
            rng_epoch_start: [0; 4],
            trace_events: 0,
            model: Vec::new(),
            buffers: Vec::new(),
            optim: OptimizerState {
                kind: String::new(),
                scalars: Vec::new(),
                tensors: Vec::new(),
            },
        };
        state.decode_meta(get("meta")?)?;
        state.decode_loop(get("loop")?)?;
        state.decode_rng(get("rng")?)?;
        {
            let mut r = Reader::new(get("trace")?);
            state.trace_events = r.u64()?;
            r.done()?;
        }
        state.model = checkpoint::decode_entries_dtype(get("model")?, state.dtype)?;
        state.buffers = checkpoint::decode_entries_dtype(get("buffers")?, state.dtype)?;
        state.optim = decode_optim(get("optim")?, state.dtype)?;
        Ok(state)
    }

    /// Reads only the telemetry line cursor from a snapshot — what a
    /// resuming caller needs to truncate the trace file *before*
    /// constructing the sink.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TrainState::load`].
    pub fn trace_cursor(path: &Path) -> io::Result<u64> {
        let sections = checkpoint::load_state(path)?;
        let bytes = sections
            .iter()
            .find(|(n, _)| n == "trace")
            .map(|(_, b)| b.as_slice())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    "state snapshot missing section \"trace\"",
                )
            })?;
        let mut r = Reader::new(bytes);
        let cursor = r.u64()?;
        r.done()?;
        Ok(cursor)
    }

    fn encode_meta(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_str(&mut buf, &self.run);
        put_str(&mut buf, &self.schedule);
        put_str(&mut buf, &self.optimizer);
        buf.extend_from_slice(&self.seed.to_le_bytes());
        buf.extend_from_slice(&self.total_samples.to_le_bytes());
        buf.extend_from_slice(&self.batch_size.to_le_bytes());
        buf.extend_from_slice(&self.epochs.to_le_bytes());
        buf.extend_from_slice(&self.lr.to_bits().to_le_bytes());
        put_str(&mut buf, self.dtype.name());
        put_str(&mut buf, &self.backend);
        put_str(&mut buf, &self.simd_level);
        buf
    }

    fn decode_meta(&mut self, bytes: &[u8]) -> io::Result<()> {
        let mut r = Reader::new(bytes);
        self.run = r.string()?;
        self.schedule = r.string()?;
        self.optimizer = r.string()?;
        self.seed = r.u64()?;
        self.total_samples = r.u64()?;
        self.batch_size = r.u64()?;
        self.epochs = r.u64()?;
        self.lr = f32::from_bits(r.u32()?);
        let dtype_name = r.string()?;
        self.dtype = DType::parse(&dtype_name).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("snapshot has unknown dtype {dtype_name:?}"),
            )
        })?;
        if !self.dtype.trainable() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("snapshot dtype {} is not a training dtype", self.dtype),
            ));
        }
        self.backend = r.string()?;
        self.simd_level = r.string()?;
        r.done()
    }

    fn encode_loop(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&self.epoch.to_le_bytes());
        buf.extend_from_slice(&self.batch_in_epoch.to_le_bytes());
        buf.extend_from_slice(&self.step.to_le_bytes());
        buf.extend_from_slice(&self.samples_done.to_le_bytes());
        buf.extend_from_slice(&self.epoch_loss.to_bits().to_le_bytes());
        buf.extend_from_slice(&self.epoch_batches.to_le_bytes());
        buf.extend_from_slice(&self.last_lr.to_bits().to_le_bytes());
        buf.extend_from_slice(&(self.history.len() as u32).to_le_bytes());
        for e in &self.history {
            buf.extend_from_slice(&e.train_loss.to_bits().to_le_bytes());
            match e.val_loss {
                Some(v) => {
                    buf.push(1);
                    buf.extend_from_slice(&v.to_bits().to_le_bytes());
                }
                None => buf.push(0),
            }
            buf.extend_from_slice(&e.lr.to_bits().to_le_bytes());
        }
        buf
    }

    fn decode_loop(&mut self, bytes: &[u8]) -> io::Result<()> {
        let mut r = Reader::new(bytes);
        self.epoch = r.u64()?;
        self.batch_in_epoch = r.u64()?;
        self.step = r.u64()?;
        self.samples_done = r.u64()?;
        self.epoch_loss = f64::from_bits(r.u64()?);
        self.epoch_batches = r.u64()?;
        self.last_lr = f32::from_bits(r.u32()?);
        let n = r.u32()? as usize;
        // each history entry is at least 13 bytes; cap the pre-allocation
        // rather than trusting the claimed count
        self.history = Vec::with_capacity(n.min(1 << 10));
        for _ in 0..n {
            let train_loss = f64::from_bits(r.u64()?);
            let val_loss = match r.u8()? {
                0 => None,
                1 => Some(f64::from_bits(r.u64()?)),
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("bad val_loss tag {other}"),
                    ))
                }
            };
            let lr = f32::from_bits(r.u32()?);
            self.history.push(EpochStats {
                train_loss,
                val_loss,
                lr,
            });
        }
        r.done()
    }

    fn encode_rng(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        for w in self.rng.iter().chain(&self.rng_epoch_start) {
            buf.extend_from_slice(&w.to_le_bytes());
        }
        buf
    }

    fn decode_rng(&mut self, bytes: &[u8]) -> io::Result<()> {
        let mut r = Reader::new(bytes);
        for w in self.rng.iter_mut().chain(self.rng_epoch_start.iter_mut()) {
            *w = r.u64()?;
        }
        r.done()
    }
}

fn encode_optim(state: &OptimizerState, dtype: DType) -> Vec<u8> {
    let mut buf = Vec::new();
    put_str(&mut buf, &state.kind);
    buf.extend_from_slice(&(state.scalars.len() as u32).to_le_bytes());
    for (name, value) in &state.scalars {
        put_str(&mut buf, name);
        buf.extend_from_slice(&value.to_bits().to_le_bytes());
    }
    buf.extend_from_slice(&checkpoint::encode_entries_dtype(&state.tensors, dtype));
    buf
}

fn decode_optim(bytes: &[u8], dtype: DType) -> io::Result<OptimizerState> {
    let mut r = Reader::new(bytes);
    let kind = r.string()?;
    let n = r.u32()? as usize;
    if n > 64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("optimizer state claims {n} scalars"),
        ));
    }
    let mut scalars = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.string()?;
        scalars.push((name, f64::from_bits(r.u64()?)));
    }
    let tensors = checkpoint::decode_entries_dtype(r.rest(), dtype)?;
    Ok(OptimizerState {
        kind,
        scalars,
        tensors,
    })
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

/// Slice cursor with clean `UnexpectedEof`/`InvalidData` errors — no
/// panics, no over-allocation, whatever the input claims.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let out = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(out)
            }
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "state section truncated",
            )),
        }
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> io::Result<String> {
        let len = self.u32()? as usize;
        if len > 1 << 12 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("string of {len} bytes exceeds the cap"),
            ));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "string is not UTF-8"))
    }

    fn rest(&mut self) -> &'a [u8] {
        let out = &self.bytes[self.pos..];
        self.pos = self.bytes.len();
        out
    }

    fn done(&mut self) -> io::Result<()> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "trailing bytes in state section",
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> TrainState {
        TrainState {
            run: "classifier".to_owned(),
            schedule: "REX".to_owned(),
            optimizer: "SGDM".to_owned(),
            seed: 42,
            total_samples: 1200,
            batch_size: 16,
            epochs: 8,
            lr: 0.05,
            dtype: DType::F32,
            backend: "simd".to_owned(),
            simd_level: "avx2+fma".to_owned(),
            epoch: 2,
            batch_in_epoch: 3,
            step: 19,
            samples_done: 304,
            epoch_loss: 6.25,
            epoch_batches: 3,
            last_lr: 0.031_25,
            history: vec![
                EpochStats {
                    train_loss: 2.5,
                    val_loss: None,
                    lr: 0.05,
                },
                EpochStats {
                    train_loss: 2.0,
                    val_loss: Some(1.75),
                    lr: 0.04,
                },
            ],
            rng: [1, 2, 3, 4],
            rng_epoch_start: [5, 6, 7, 8],
            trace_events: 23,
            model: vec![
                ("w".to_owned(), Tensor::arange(0.0, 1.0, 6)),
                (
                    "b".to_owned(),
                    Tensor::from_vec(vec![0.5, -0.5], &[2]).unwrap(),
                ),
            ],
            buffers: vec![(
                "bn.running_mean".to_owned(),
                Tensor::from_vec(vec![0.25, 0.75], &[2]).unwrap(),
            )],
            optim: OptimizerState {
                kind: "sgd".to_owned(),
                scalars: vec![("t".to_owned(), 19.0)],
                tensors: vec![("velocity:w".to_owned(), Tensor::zeros(&[6]))],
            },
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("rex_snapshot_{name}_{}", std::process::id()))
    }

    #[test]
    fn state_roundtrips_exactly() {
        let state = sample_state();
        let path = tmp("roundtrip");
        state.save(&path).unwrap();
        let back = TrainState::load(&path).unwrap();
        assert_eq!(TrainState::trace_cursor(&path).unwrap(), 23);
        let _ = std::fs::remove_file(&path);
        assert_eq!(state, back);
    }

    #[test]
    fn half_precision_state_roundtrips_and_shrinks_tensor_sections() {
        let mut state = sample_state();
        state.dtype = DType::F16;
        // live training state is always pre-rounded to the storage dtype
        for (_, t) in state
            .model
            .iter_mut()
            .chain(state.buffers.iter_mut())
            .chain(state.optim.tensors.iter_mut())
        {
            DType::F16.round_slice(t.data_mut());
        }
        let path = tmp("half");
        state.save(&path).unwrap();
        let half_len = std::fs::metadata(&path).unwrap().len();
        let back = TrainState::load(&path).unwrap();
        assert_eq!(state, back);

        let mut full = state.clone();
        full.dtype = DType::F32;
        full.save(&path).unwrap();
        let full_len = std::fs::metadata(&path).unwrap().len();
        let _ = std::fs::remove_file(&path);
        // 16 tensor elements in the sample state, 2 bytes saved each
        assert_eq!(full_len - half_len, 2 * 16);
    }

    #[test]
    fn unknown_dtype_in_meta_is_invalid_data() {
        let state = sample_state();
        let path = tmp("dtype");
        state.save(&path).unwrap();
        let sections = checkpoint::load_state(&path).unwrap();
        let doctored: Vec<(String, Vec<u8>)> = sections
            .into_iter()
            .map(|(name, bytes)| {
                if name == "meta" {
                    // the dtype string "f32" is the last-but-two field;
                    // rewrite its bytes in place
                    let mut b = bytes;
                    let pos = b.windows(3).rposition(|w| w == b"f32").unwrap();
                    b[pos..pos + 3].copy_from_slice(b"f99");
                    (name, b)
                } else {
                    (name, bytes)
                }
            })
            .collect();
        checkpoint::save_state(&path, &doctored).unwrap();
        let err = TrainState::load(&path).unwrap_err();
        let _ = std::fs::remove_file(&path);
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("unknown dtype"), "{err}");
    }

    #[test]
    fn corrupt_snapshots_load_as_clean_errors() {
        let state = sample_state();
        let path = tmp("corrupt");
        state.save(&path).unwrap();
        let good = std::fs::read(&path).unwrap();
        // the container checksum catches every flip; truncations surface
        // as eof/invalid — spot-check a spread of offsets
        for pos in (0..good.len()).step_by(37) {
            let mut bad = good.clone();
            bad[pos] ^= 0x40;
            std::fs::write(&path, &bad).unwrap();
            let err = TrainState::load(&path).unwrap_err();
            assert!(
                matches!(
                    err.kind(),
                    io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof
                ),
                "flip at {pos}: {err}"
            );
            std::fs::write(&path, &good[..pos]).unwrap();
            let err = TrainState::load(&path).unwrap_err();
            assert!(
                matches!(
                    err.kind(),
                    io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof
                ),
                "truncation at {pos}: {err}"
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_section_is_invalid_data() {
        let path = tmp("missing");
        checkpoint::save_state(&path, &[("rng".to_owned(), vec![])]).unwrap();
        let err = TrainState::load(&path).unwrap_err();
        let _ = std::fs::remove_file(&path);
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("missing section"), "{err}");
    }
}
