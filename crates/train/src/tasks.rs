//! Per-setting experiment drivers: one function per paper setting, all
//! following the same budgeted protocol and returning the setting's
//! headline metric.

use rex_autograd::Graph;
use rex_core::{Schedule, ScheduleSpec};
use rex_data::digits::DigitDataset;
use rex_data::scenes::SceneDataset;
use rex_data::text::{LmCorpus, TextTask};
use rex_data::{batches_traced, ClassificationDataset};
use rex_eval::map::{mean_average_precision, GroundTruth, Prediction};
use rex_nn::{
    DetectionTargets, Linear, MicroResNet, MicroVgg, MicroWideResNet, Module, TinyDetector,
    TinyTransformer, TransformerConfig, Vae,
};
use rex_optim::{clip_grad_norm, global_grad_norm, global_param_norm, Optimizer};
use rex_telemetry::{Event, Recorder, StepRecord};
use rex_tensor::{DType, Prng, TensorError};

use crate::error::TrainError;
use crate::trainer::{FtConfig, OptimizerKind, TrainConfig, Trainer};

/// Which image-classification architecture a setting uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImageModel {
    /// The RN20-CIFAR10 analogue.
    MicroResNet20,
    /// The RN38-CIFAR10 analogue (Table 2's second model).
    MicroResNet38,
    /// The RN50-ImageNet analogue (deeper/wider).
    MicroResNet50,
    /// The WRN-STL10 analogue with the given widen factor.
    MicroWide(usize),
    /// The VGG16-CIFAR100 analogue (needs the input size).
    MicroVgg(usize),
}

impl ImageModel {
    /// Builds the model for `num_classes` outputs with the given seed.
    pub fn build(&self, num_classes: usize, seed: u64) -> Box<dyn Module> {
        match *self {
            ImageModel::MicroResNet20 => Box::new(MicroResNet::rn20_analog(num_classes, seed)),
            ImageModel::MicroResNet38 => Box::new(MicroResNet::rn38_analog(num_classes, seed)),
            ImageModel::MicroResNet50 => Box::new(MicroResNet::rn50_analog(num_classes, seed)),
            ImageModel::MicroWide(widen) => {
                Box::new(MicroWideResNet::new(num_classes, widen, seed))
            }
            ImageModel::MicroVgg(input) => Box::new(MicroVgg::new(num_classes, input, seed)),
        }
    }
}

/// Trains `model_kind` on `data` for `epochs` and returns the test error
/// (%). One cell of Tables 4–6/8.
///
/// # Errors
///
/// Propagates [`TrainError`]s from the trainer (tensor errors, plus the
/// fault-tolerance failure modes when those knobs are on).
#[allow(clippy::too_many_arguments)]
pub fn run_image_cell(
    model_kind: ImageModel,
    data: &ClassificationDataset,
    epochs: usize,
    batch_size: usize,
    optimizer: OptimizerKind,
    schedule: ScheduleSpec,
    lr: f32,
    seed: u64,
) -> Result<f64, TrainError> {
    run_image_cell_traced(
        model_kind,
        data,
        epochs,
        batch_size,
        optimizer,
        schedule,
        lr,
        seed,
        DType::F32,
        &mut Recorder::disabled(),
    )
}

/// [`run_image_cell`] with telemetry emitted into `rec` (see
/// [`Trainer::train_classifier_traced`]) and an explicit parameter
/// storage precision (`DType::F32` is the legacy bit-exact path).
///
/// # Errors
///
/// Same conditions as [`run_image_cell`].
#[allow(clippy::too_many_arguments)]
pub fn run_image_cell_traced(
    model_kind: ImageModel,
    data: &ClassificationDataset,
    epochs: usize,
    batch_size: usize,
    optimizer: OptimizerKind,
    schedule: ScheduleSpec,
    lr: f32,
    seed: u64,
    dtype: DType,
    rec: &mut Recorder,
) -> Result<f64, TrainError> {
    run_image_cell_ft(
        model_kind,
        data,
        epochs,
        batch_size,
        optimizer,
        schedule,
        lr,
        seed,
        dtype,
        FtConfig::default(),
        rec,
    )
}

/// [`run_image_cell_traced`] with fault-tolerance knobs: periodic
/// crash-safe checkpoints, resume, numeric guards, deliberate halts.
///
/// # Errors
///
/// Same conditions as [`run_image_cell`].
#[allow(clippy::too_many_arguments)]
pub fn run_image_cell_ft(
    model_kind: ImageModel,
    data: &ClassificationDataset,
    epochs: usize,
    batch_size: usize,
    optimizer: OptimizerKind,
    schedule: ScheduleSpec,
    lr: f32,
    seed: u64,
    dtype: DType,
    ft: FtConfig,
    rec: &mut Recorder,
) -> Result<f64, TrainError> {
    let model = model_kind.build(data.num_classes, seed);
    let mut trainer = Trainer::new(TrainConfig {
        epochs,
        batch_size,
        lr,
        optimizer,
        schedule,
        augment: true,
        grad_clip: None,
        seed: seed ^ 0x7EA1,
        dtype,
        ft,
    });
    Ok(trainer
        .train_classifier_traced(
            model.as_ref(),
            &data.train_images,
            &data.train_labels,
            &data.test_images,
            &data.test_labels,
            rec,
        )?
        .final_metric)
}

/// Drives the per-iteration schedule/optimizer coupling shared by the
/// custom loops below. Progress is measured in **samples**, not steps, so
/// a partial final mini-batch advances the budget clock by its true size.
struct ScheduleDriver {
    schedule: Box<dyn Schedule>,
    total_samples: u64,
    lr0: f32,
    samples_done: u64,
    last_lr: f32,
}

impl ScheduleDriver {
    fn new(spec: &ScheduleSpec, total_samples: u64, lr0: f32) -> Self {
        ScheduleDriver {
            schedule: spec.build(),
            total_samples,
            lr0,
            samples_done: 0,
            last_lr: lr0,
        }
    }

    /// Applies the LR (and momentum) for the current step, then advances
    /// the budget clock by the mini-batch's sample count.
    fn apply(&mut self, opt: &mut dyn Optimizer, batch_len: usize) {
        let factor = self.schedule.factor(self.samples_done, self.total_samples) as f32;
        self.last_lr = self.lr0 * factor;
        opt.set_lr(self.last_lr);
        if let Some(m) = self
            .schedule
            .momentum(self.samples_done, self.total_samples)
        {
            opt.set_momentum(m as f32);
        }
        self.samples_done += batch_len as u64;
    }

    fn on_validation(&mut self, loss: f64) {
        self.schedule.on_validation(loss);
    }
}

/// Trains a VAE on digit images for `epochs` and returns the test
/// generalization loss (negative ELBO). One cell of Table 7.
///
/// # Errors
///
/// Propagates [`TensorError`]s from the model.
#[allow(clippy::too_many_arguments)]
pub fn run_vae_cell(
    train: &DigitDataset,
    test: &DigitDataset,
    epochs: usize,
    batch_size: usize,
    optimizer: OptimizerKind,
    schedule: ScheduleSpec,
    lr: f32,
    seed: u64,
) -> Result<f64, TensorError> {
    run_vae_cell_traced(
        train,
        test,
        epochs,
        batch_size,
        optimizer,
        schedule,
        lr,
        seed,
        &mut Recorder::disabled(),
    )
}

/// [`run_vae_cell`] with telemetry emitted into `rec`.
///
/// # Errors
///
/// Propagates [`TensorError`]s from the model.
#[allow(clippy::too_many_arguments)]
pub fn run_vae_cell_traced(
    train: &DigitDataset,
    test: &DigitDataset,
    epochs: usize,
    batch_size: usize,
    optimizer: OptimizerKind,
    schedule: ScheduleSpec,
    lr: f32,
    seed: u64,
    rec: &mut Recorder,
) -> Result<f64, TensorError> {
    let dim = train.size * train.size;
    let vae = Vae::new(dim, 64, 8, seed);
    let params = vae.params();
    let mut opt = optimizer.build(params, lr);
    let traced = rec.is_enabled();
    opt.set_instrumented(traced);
    let mut rng = Prng::new(seed ^ 0xE1B0);
    let total_samples = train.len() as u64 * epochs as u64;
    let mut driver = ScheduleDriver::new(&schedule, total_samples, lr);
    let needs_val = schedule.needs_validation_feedback();
    let fake_labels = vec![0usize; train.len()];

    rec.emit(Event::RunStart {
        run: "vae".to_owned(),
        schedule: driver.schedule.name().to_owned(),
        optimizer: optimizer.name().to_owned(),
        seed,
        total_samples,
    });
    let mut step: u64 = 0;
    for epoch in 0..epochs {
        let epoch_batches = batches_traced(
            &train.images,
            &fake_labels,
            batch_size,
            Some(&mut rng),
            rec,
            epoch as u64,
        );
        for (batch_id, batch) in epoch_batches.into_iter().enumerate() {
            driver.apply(opt.as_mut(), batch.labels.len());
            opt.zero_grad();
            let mut g = Graph::new(true);
            let loss = vae.elbo(&mut g, &batch.images)?;
            g.backward(loss)?;
            let grad_norm = if traced {
                global_grad_norm(opt.params())
            } else {
                0.0
            };
            opt.step();
            if traced {
                rec.emit(Event::Step(StepRecord {
                    step,
                    epoch: epoch as u64,
                    batch_id: batch_id as u64,
                    lr: driver.last_lr as f64,
                    loss: g.value(loss).item() as f64,
                    grad_norm: grad_norm as f64,
                    param_norm: global_param_norm(opt.params()) as f64,
                    elapsed_ns: 0,
                }));
            }
            step += 1;
        }
        if needs_val {
            let vl = vae_loss(&vae, test)?;
            driver.on_validation(vl);
            if traced {
                rec.emit(Event::Validation {
                    epoch: epoch as u64,
                    loss: vl,
                });
            }
        }
    }
    let metric = vae_loss(&vae, test)?;
    rec.emit(Event::RunEnd { metric });
    rec.flush();
    Ok(metric)
}

/// Deterministic (eval-mode) ELBO of a VAE over a digit set.
///
/// # Errors
///
/// Propagates [`TensorError`]s from the model.
pub fn vae_loss(vae: &Vae, data: &DigitDataset) -> Result<f64, TensorError> {
    let mut g = Graph::new(false);
    let loss = vae.elbo(&mut g, &data.images)?;
    Ok(g.value(loss).item() as f64)
}

/// Trains a detector on synthetic scenes, with the paper's 2-epoch linear
/// warmup excluded from the budget, and returns the test mAP (%). One cell
/// of Table 9.
///
/// # Errors
///
/// Propagates [`TensorError`]s from the model.
#[allow(clippy::too_many_arguments)]
pub fn run_detection_cell(
    train: &SceneDataset,
    test: &SceneDataset,
    epochs: usize,
    warmup_epochs: usize,
    batch_size: usize,
    optimizer: OptimizerKind,
    schedule: ScheduleSpec,
    lr: f32,
    seed: u64,
) -> Result<f64, TensorError> {
    run_detection_cell_traced(
        train,
        test,
        epochs,
        warmup_epochs,
        batch_size,
        optimizer,
        schedule,
        lr,
        seed,
        &mut Recorder::disabled(),
    )
}

/// [`run_detection_cell`] with telemetry emitted into `rec`.
///
/// # Errors
///
/// Propagates [`TensorError`]s from the model.
#[allow(clippy::too_many_arguments)]
pub fn run_detection_cell_traced(
    train: &SceneDataset,
    test: &SceneDataset,
    epochs: usize,
    warmup_epochs: usize,
    batch_size: usize,
    optimizer: OptimizerKind,
    schedule: ScheduleSpec,
    lr: f32,
    seed: u64,
    rec: &mut Recorder,
) -> Result<f64, TensorError> {
    let input_size = train.images.shape()[2];
    let det = TinyDetector::new(train.num_classes, input_size, seed);
    let mut opt = optimizer.build(det.params(), lr);
    let traced = rec.is_enabled();
    opt.set_instrumented(traced);
    let mut rng = Prng::new(seed ^ 0xDE7E);
    let n = train.len();
    // Warmup from lr/10 over the warmup epochs, then the budgeted schedule
    // over the remaining samples (warmup excluded from the budget).
    let spec = ScheduleSpec::WithWarmup(Box::new(schedule), (warmup_epochs * n) as u64, 0.1);
    let total_samples = (n * (epochs + warmup_epochs)) as u64;
    let mut driver = ScheduleDriver::new(&spec, total_samples, lr);

    rec.emit(Event::RunStart {
        run: "detection".to_owned(),
        schedule: driver.schedule.name().to_owned(),
        optimizer: optimizer.name().to_owned(),
        seed,
        total_samples,
    });
    let grid = train.grid;
    let mut step: u64 = 0;
    for epoch in 0..(epochs + warmup_epochs) {
        // shuffle scene indices directly: the targets live in parallel
        // arrays, so batches() cannot assemble them for us
        let order = rng.permutation(n);
        if traced {
            rec.emit(Event::Epoch {
                epoch: epoch as u64,
                samples: n as u64,
                batches: n.div_ceil(batch_size) as u64,
                shuffled: true,
            });
        }
        for (batch_id, chunk) in order.chunks(batch_size).enumerate() {
            driver.apply(opt.as_mut(), chunk.len());
            opt.zero_grad();
            let images = train.images.gather_rows(chunk);
            let objectness = train.objectness.gather_rows(chunk);
            let boxes = train.boxes.gather_rows(chunk);
            let mut classes = Vec::with_capacity(chunk.len() * grid * grid);
            for &i in chunk {
                classes
                    .extend_from_slice(&train.cell_classes[i * grid * grid..(i + 1) * grid * grid]);
            }
            let targets = DetectionTargets::new(objectness, boxes, classes)?;
            let mut g = Graph::new(true);
            let x = g.constant(images);
            let loss = det.loss(&mut g, x, &targets)?;
            g.backward(loss)?;
            let grad_norm = if traced {
                global_grad_norm(opt.params())
            } else {
                0.0
            };
            opt.step();
            if traced {
                rec.emit(Event::Step(StepRecord {
                    step,
                    epoch: epoch as u64,
                    batch_id: batch_id as u64,
                    lr: driver.last_lr as f64,
                    loss: g.value(loss).item() as f64,
                    grad_norm: grad_norm as f64,
                    param_norm: global_param_norm(opt.params()) as f64,
                    elapsed_ns: 0,
                }));
            }
            step += 1;
        }
    }
    let metric = detection_map(&det, test)?;
    rec.emit(Event::RunEnd { metric });
    rec.flush();
    Ok(metric)
}

/// Evaluates a detector's mAP@0.5 (%) over a scene set.
///
/// # Errors
///
/// Propagates [`TensorError`]s from the model.
pub fn detection_map(det: &TinyDetector, test: &SceneDataset) -> Result<f64, TensorError> {
    let raw = det.decode(&test.images)?;
    let mut preds = Vec::new();
    for (image, dets) in raw.iter().enumerate() {
        for d in dets {
            if d.score > 0.05 {
                preds.push(Prediction {
                    image,
                    class: d.class,
                    score: d.score,
                    cxcywh: d.cxcywh,
                });
            }
        }
    }
    let mut gts = Vec::new();
    for (image, objs) in test.objects.iter().enumerate() {
        for o in objs {
            gts.push(GroundTruth {
                image,
                class: o.class,
                cxcywh: o.cxcywh,
            });
        }
    }
    Ok(mean_average_precision(&preds, &gts, test.num_classes, 0.5))
}

/// Pre-trains a [`TinyTransformer`] on a masked-token corpus — the shared
/// "BERT checkpoint" that every GLUE cell fine-tunes from.
///
/// # Errors
///
/// Propagates [`TensorError`]s from the model.
pub fn pretrain_transformer(
    corpus: &LmCorpus,
    cfg: TransformerConfig,
    epochs: usize,
    batch_size: usize,
    lr: f32,
    seed: u64,
) -> Result<TinyTransformer, TensorError> {
    let tf = TinyTransformer::new(cfg, seed);
    let mut opt = OptimizerKind::adamw().build(tf.params(), lr);
    let mut rng = Prng::new(seed ^ 0x93A5);
    let t_len = corpus.seq_len;
    for _ in 0..epochs {
        let order = rng.permutation(corpus.n);
        for chunk in order.chunks(batch_size) {
            opt.zero_grad();
            let mut inputs = Vec::with_capacity(chunk.len() * t_len);
            let mut targets = Vec::with_capacity(chunk.len() * t_len);
            for &i in chunk {
                inputs.extend_from_slice(&corpus.inputs[i * t_len..(i + 1) * t_len]);
                targets.extend_from_slice(&corpus.targets[i * t_len..(i + 1) * t_len]);
            }
            let mut g = Graph::new(true);
            let logits = tf.lm_logits(&mut g, &inputs, chunk.len())?;
            let loss = g.cross_entropy(logits, &targets)?;
            g.backward(loss)?;
            clip_grad_norm(opt.params(), 1.0);
            opt.step();
        }
    }
    Ok(tf)
}

/// Fine-tunes a copy of `pretrained` on one GLUE task for `epochs` and
/// returns the test accuracy (%). One cell of Tables 10–11.
///
/// # Errors
///
/// Propagates [`TensorError`]s from the model.
#[allow(clippy::too_many_arguments)]
pub fn run_glue_cell(
    pretrained: &TinyTransformer,
    task: &TextTask,
    epochs: usize,
    batch_size: usize,
    schedule: ScheduleSpec,
    lr: f32,
    seed: u64,
) -> Result<f64, TensorError> {
    run_glue_cell_traced(
        pretrained,
        task,
        epochs,
        batch_size,
        schedule,
        lr,
        seed,
        &mut Recorder::disabled(),
    )
}

/// [`run_glue_cell`] with telemetry emitted into `rec`.
///
/// # Errors
///
/// Propagates [`TensorError`]s from the model.
#[allow(clippy::too_many_arguments)]
pub fn run_glue_cell_traced(
    pretrained: &TinyTransformer,
    task: &TextTask,
    epochs: usize,
    batch_size: usize,
    schedule: ScheduleSpec,
    lr: f32,
    seed: u64,
    rec: &mut Recorder,
) -> Result<f64, TensorError> {
    let tf = pretrained.clone_weights(seed);
    let mut rng = Prng::new(seed ^ 0x61E5);
    let head = Linear::new("task_head", tf.config().dim, task.num_classes, &mut rng);
    let mut params = tf.encoder_params();
    params.extend(head.params());
    let mut opt = OptimizerKind::adamw().build(params, lr);
    let traced = rec.is_enabled();
    opt.set_instrumented(traced);

    let t_len = task.seq_len;
    let n = task.train_len();
    let total_samples = (n * epochs) as u64;
    let mut driver = ScheduleDriver::new(&schedule, total_samples, lr);
    let needs_val = schedule.needs_validation_feedback();

    rec.emit(Event::RunStart {
        run: format!("glue:{}", task.name),
        schedule: driver.schedule.name().to_owned(),
        optimizer: OptimizerKind::adamw().name().to_owned(),
        seed,
        total_samples,
    });
    let mut step: u64 = 0;
    for epoch in 0..epochs {
        let order = rng.permutation(n);
        if traced {
            rec.emit(Event::Epoch {
                epoch: epoch as u64,
                samples: n as u64,
                batches: n.div_ceil(batch_size) as u64,
                shuffled: true,
            });
        }
        for (batch_id, chunk) in order.chunks(batch_size).enumerate() {
            driver.apply(opt.as_mut(), chunk.len());
            opt.zero_grad();
            let mut tokens = Vec::with_capacity(chunk.len() * t_len);
            let mut labels = Vec::with_capacity(chunk.len());
            for &i in chunk {
                tokens.extend_from_slice(&task.train_tokens[i * t_len..(i + 1) * t_len]);
                labels.push(task.train_labels[i]);
            }
            let mut g = Graph::new(true);
            let logits = tf.classify(&mut g, &tokens, chunk.len(), &head)?;
            let loss = g.cross_entropy(logits, &labels)?;
            g.backward(loss)?;
            let grad_norm = clip_grad_norm(opt.params(), 1.0);
            opt.step();
            if traced {
                rec.emit(Event::Step(StepRecord {
                    step,
                    epoch: epoch as u64,
                    batch_id: batch_id as u64,
                    lr: driver.last_lr as f64,
                    loss: g.value(loss).item() as f64,
                    grad_norm: grad_norm as f64,
                    param_norm: global_param_norm(opt.params()) as f64,
                    elapsed_ns: 0,
                }));
            }
            step += 1;
        }
        if needs_val {
            let vl = 100.0 - glue_accuracy(&tf, &head, task)?;
            driver.on_validation(vl);
            if traced {
                rec.emit(Event::Validation {
                    epoch: epoch as u64,
                    loss: vl,
                });
            }
        }
    }
    let metric = glue_accuracy(&tf, &head, task)?;
    rec.emit(Event::RunEnd { metric });
    rec.flush();
    Ok(metric)
}

/// Test accuracy (%) of a fine-tuned transformer + head on one task.
///
/// # Errors
///
/// Propagates [`TensorError`]s from the model.
pub fn glue_accuracy(
    tf: &TinyTransformer,
    head: &Linear,
    task: &TextTask,
) -> Result<f64, TensorError> {
    let t_len = task.seq_len;
    let n = task.test_len();
    let mut predictions = Vec::with_capacity(n);
    for chunk_start in (0..n).step_by(32) {
        let chunk_end = (chunk_start + 32).min(n);
        let b = chunk_end - chunk_start;
        let tokens = &task.test_tokens[chunk_start * t_len..chunk_end * t_len];
        let mut g = Graph::new(false);
        let logits = tf.classify(&mut g, tokens, b, head)?;
        predictions.extend(g.value(logits).argmax_rows()?);
    }
    Ok(rex_eval::stats::accuracy(&predictions, &task.test_labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_data::digits::synth_digits;
    use rex_data::images::synth_cifar10;
    use rex_data::scenes::synth_scenes;
    use rex_data::text::{glue_tasks, lm_corpus};

    #[test]
    fn image_cell_runs_and_returns_error() {
        let data = synth_cifar10(3, 2, 0);
        let err = run_image_cell(
            ImageModel::MicroResNet20,
            &data,
            1,
            16,
            OptimizerKind::sgdm(),
            ScheduleSpec::Rex,
            0.05,
            1,
        )
        .unwrap();
        assert!((0.0..=100.0).contains(&err));
    }

    #[test]
    fn vae_cell_improves_over_untrained() {
        let train = synth_digits(64, 12, 0);
        let test = synth_digits(32, 12, 1);
        let untrained = {
            let vae = Vae::new(144, 64, 8, 5);
            vae_loss(&vae, &test).unwrap()
        };
        let trained = run_vae_cell(
            &train,
            &test,
            4,
            16,
            OptimizerKind::adam(),
            ScheduleSpec::Rex,
            1e-3,
            5,
        )
        .unwrap();
        assert!(trained < untrained, "{trained} !< {untrained}");
    }

    #[test]
    fn detection_cell_produces_valid_map() {
        let train = synth_scenes(16, 24, 0);
        let test = synth_scenes(8, 24, 1);
        let map = run_detection_cell(
            &train,
            &test,
            1,
            1,
            8,
            OptimizerKind::adam(),
            ScheduleSpec::Linear,
            1e-3,
            2,
        )
        .unwrap();
        assert!((0.0..=100.0).contains(&map));
    }

    #[test]
    fn glue_cell_beats_chance_after_finetune() {
        let cfg = TransformerConfig {
            vocab: 32,
            dim: 16,
            heads: 2,
            depth: 1,
            seq_len: 12,
            ff_mult: 2,
        };
        let corpus = lm_corpus(64, 12, 32, 0);
        let tf = pretrain_transformer(&corpus, cfg, 2, 16, 1e-3, 3).unwrap();
        let tasks = glue_tasks(128, 64, 12, 32, 4);
        let sst2 = tasks.iter().find(|t| t.name == "SST-2").unwrap();
        let acc = run_glue_cell(&tf, sst2, 3, 8, ScheduleSpec::Linear, 3e-3, 5).unwrap();
        assert!(acc > 55.0, "accuracy {acc} not above chance");
    }
}
