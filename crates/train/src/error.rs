//! The training loop's error type.
//!
//! Fault-tolerant training distinguishes *model* failures
//! ([`TrainError::Tensor`]), *numeric* failures caught by the guards
//! ([`TrainError::NonFinite`]), and *infrastructure* failures around
//! checkpointing and resume — each actionable in a different way.

use rex_tensor::TensorError;
use std::path::PathBuf;

/// Any failure a training run can surface.
#[derive(Debug)]
pub enum TrainError {
    /// A shape/compute error from the model's forward or backward pass.
    Tensor(TensorError),
    /// A numeric guard tripped under [`GuardPolicy::Abort`], or tripped
    /// twice at the same step under [`GuardPolicy::Rollback`].
    ///
    /// [`GuardPolicy::Abort`]: crate::GuardPolicy::Abort
    /// [`GuardPolicy::Rollback`]: crate::GuardPolicy::Rollback
    NonFinite {
        /// Step at which the non-finite value was observed.
        step: u64,
        /// What was non-finite: `"loss"`, or `"grad:{param}"` naming the
        /// offending tensor.
        what: String,
        /// The observed value (NaN or ±∞).
        value: f64,
    },
    /// Saving or loading a checkpoint file failed.
    Checkpoint {
        /// `"save"` or `"load"`.
        action: &'static str,
        /// The checkpoint path involved.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A loaded checkpoint is incompatible with the current run (wrong
    /// schedule, optimizer, seed, dataset size, …).
    Resume(String),
    /// The fault-tolerance configuration itself is unusable (zero
    /// checkpoint interval, stateful schedule, missing path, …).
    Config(String),
    /// The run stopped deliberately at `FtConfig::halt_after_step`; the
    /// checkpoint on disk resumes it. Not a failure — a scheduled pause.
    Halted {
        /// The last completed step.
        step: u64,
    },
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::Tensor(e) => write!(f, "tensor error: {e}"),
            TrainError::NonFinite { step, what, value } => {
                write!(f, "non-finite {what} ({value}) at step {step}")
            }
            TrainError::Checkpoint {
                action,
                path,
                source,
            } => {
                write!(
                    f,
                    "checkpoint {action} failed at {}: {source}",
                    path.display()
                )
            }
            TrainError::Resume(msg) => write!(f, "resume rejected: {msg}"),
            TrainError::Config(msg) => write!(f, "invalid fault-tolerance config: {msg}"),
            TrainError::Halted { step } => write!(f, "halted after step {step} (resumable)"),
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Tensor(e) => Some(e),
            TrainError::Checkpoint { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<TensorError> for TrainError {
    fn from(e: TensorError) -> Self {
        TrainError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_step_and_tensor() {
        let e = TrainError::NonFinite {
            step: 17,
            what: "grad:layer1.weight".to_owned(),
            value: f64::NAN,
        };
        let msg = e.to_string();
        assert!(msg.contains("step 17"), "{msg}");
        assert!(msg.contains("grad:layer1.weight"), "{msg}");
    }

    #[test]
    fn tensor_errors_convert_and_chain() {
        let te = TensorError::MatmulMismatch {
            lhs: vec![2, 3],
            rhs: vec![4, 5],
        };
        let e: TrainError = te.into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("tensor error"));
    }
}
