use rex_autograd::{Graph, Param};
use rex_core::{Schedule, ScheduleSpec};
use rex_data::{augment_hflip, batches, batches_traced};
use rex_nn::Module;
use rex_optim::{clip_grad_norm, global_grad_norm, global_param_norm, Adam, Optimizer, Sgd};
use rex_telemetry::{Event, Recorder, StepRecord};
use rex_tensor::{Prng, Tensor, TensorError};
use std::time::Instant;

/// Which optimizer family to instantiate (the paper pairs every schedule
/// with both SGDM and Adam; the BERT setting uses AdamW).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimizerKind {
    /// SGD with momentum (default β = 0.9).
    Sgdm {
        /// Momentum coefficient.
        momentum: f32,
        /// L2 weight decay.
        weight_decay: f32,
    },
    /// Adam with optional coupled L2 decay.
    Adam {
        /// L2 weight decay (coupled).
        weight_decay: f32,
    },
    /// AdamW (decoupled decay).
    AdamW {
        /// Decoupled weight decay.
        weight_decay: f32,
    },
}

impl OptimizerKind {
    /// The paper's standard SGDM (β = 0.9, light decay).
    pub fn sgdm() -> Self {
        OptimizerKind::Sgdm {
            momentum: 0.9,
            weight_decay: 5e-4,
        }
    }

    /// The paper's standard Adam.
    pub fn adam() -> Self {
        OptimizerKind::Adam { weight_decay: 0.0 }
    }

    /// AdamW as used for BERT fine-tuning.
    pub fn adamw() -> Self {
        OptimizerKind::AdamW { weight_decay: 0.01 }
    }

    /// Display name matching the paper's table headers.
    pub fn name(&self) -> &'static str {
        match self {
            OptimizerKind::Sgdm { .. } => "SGDM",
            OptimizerKind::Adam { .. } => "Adam",
            OptimizerKind::AdamW { .. } => "AdamW",
        }
    }

    /// Instantiates the optimizer over `params` at the given initial LR.
    pub fn build(&self, params: Vec<Param>, lr: f32) -> Box<dyn Optimizer> {
        match *self {
            OptimizerKind::Sgdm {
                momentum,
                weight_decay,
            } => Box::new(
                Sgd::new(params, lr)
                    .with_momentum(momentum)
                    .with_weight_decay(weight_decay),
            ),
            OptimizerKind::Adam { weight_decay } => {
                let mut a = Adam::new(params, lr);
                if weight_decay > 0.0 {
                    a = a.with_weight_decay(weight_decay);
                }
                Box::new(a)
            }
            OptimizerKind::AdamW { weight_decay } => {
                Box::new(Adam::adamw(params, lr, weight_decay))
            }
        }
    }

    /// A sensible tuned default initial LR for this optimizer family on the
    /// micro-models (the starting point for ×3 tuning). These sit at the
    /// top of the stable range — the operating point per-schedule tuning
    /// selects in the paper, where decaying schedules can exploit a large
    /// initial step.
    pub fn default_lr(&self) -> f32 {
        match self {
            OptimizerKind::Sgdm { .. } => 0.1,
            OptimizerKind::Adam { .. } => 1e-2,
            OptimizerKind::AdamW { .. } => 3e-3,
        }
    }
}

/// Configuration of one training run.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of (budgeted) epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initial learning rate η₀.
    pub lr: f32,
    /// Optimizer family.
    pub optimizer: OptimizerKind,
    /// Schedule specification (built fresh inside the run).
    pub schedule: ScheduleSpec,
    /// Random horizontal flip augmentation (image classification only).
    pub augment: bool,
    /// Gradient clipping threshold (global L2 norm), if any.
    pub grad_clip: Option<f32>,
    /// RNG seed for shuffling/augmentation.
    pub seed: u64,
}

impl TrainConfig {
    /// A classification config with common defaults.
    pub fn new(epochs: usize, optimizer: OptimizerKind, schedule: ScheduleSpec, seed: u64) -> Self {
        TrainConfig {
            epochs,
            batch_size: 32,
            lr: optimizer.default_lr(),
            optimizer,
            schedule,
            augment: true,
            grad_clip: None,
            seed,
        }
    }
}

/// Per-epoch diagnostics collected during a run.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Mean training loss over the epoch.
    pub train_loss: f64,
    /// Validation loss, when computed (plateau schedules).
    pub val_loss: Option<f64>,
    /// Learning rate at the epoch's last iteration.
    pub lr: f32,
}

/// Result of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainResult {
    /// Final evaluation metric (test error %, loss, …; task-defined).
    pub final_metric: f64,
    /// Per-epoch history.
    pub history: Vec<EpochStats>,
}

/// The generic budget-aware training loop.
///
/// `Trainer` is deliberately model-agnostic: the caller supplies closures
/// for the per-batch loss and (optionally) the per-epoch validation loss.
/// The schedule is stepped **per iteration** against the budgeted total
/// step count, exactly as the paper prescribes.
pub struct Trainer {
    config: TrainConfig,
    schedule: Box<dyn Schedule>,
}

impl std::fmt::Debug for Trainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Trainer({:?}, schedule {})",
            self.config,
            self.schedule.name()
        )
    }
}

impl Trainer {
    /// Builds a trainer, instantiating a fresh schedule from the config.
    pub fn new(config: TrainConfig) -> Self {
        let schedule = config.schedule.build();
        Trainer { config, schedule }
    }

    /// The run configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Runs the loop over an image-classification dataset with the given
    /// model, returning the final test error (%) and history.
    ///
    /// # Errors
    ///
    /// Propagates [`TensorError`]s from the model's forward/backward.
    pub fn train_classifier(
        &mut self,
        model: &dyn Module,
        train_images: &Tensor,
        train_labels: &[usize],
        test_images: &Tensor,
        test_labels: &[usize],
    ) -> Result<TrainResult, TensorError> {
        self.train_classifier_traced(
            model,
            train_images,
            train_labels,
            test_images,
            test_labels,
            &mut Recorder::disabled(),
        )
    }

    /// [`Trainer::train_classifier`] with telemetry: emits run/epoch
    /// boundaries, one [`StepRecord`] per optimizer step (applied LR, batch
    /// loss, pre-clip gradient norm, post-step parameter norm), validation
    /// passes, and the final metric into `rec`. With a disabled recorder
    /// this is exactly the plain loop — norms are not even computed.
    ///
    /// # Errors
    ///
    /// Propagates [`TensorError`]s from the model's forward/backward.
    pub fn train_classifier_traced(
        &mut self,
        model: &dyn Module,
        train_images: &Tensor,
        train_labels: &[usize],
        test_images: &Tensor,
        test_labels: &[usize],
        rec: &mut Recorder,
    ) -> Result<TrainResult, TensorError> {
        let cfg = self.config.clone();
        let mut opt = cfg.optimizer.build(model.params(), cfg.lr);
        let traced = rec.is_enabled();
        opt.set_instrumented(traced);
        let mut rng = Prng::new(cfg.seed);
        // Budget accounting is sample-exact: schedule progress advances by
        // the number of samples actually consumed, so a partial final
        // mini-batch moves the clock by its true size rather than a full
        // step. (When the dataset size divides the batch size the
        // progress fractions — and therefore the LR trajectory — are
        // identical to per-step accounting.)
        let total_samples = train_labels.len() as u64 * cfg.epochs as u64;
        let needs_val = cfg.schedule.needs_validation_feedback();

        rec.emit(Event::RunStart {
            run: "classifier".to_owned(),
            schedule: self.schedule.name().to_owned(),
            optimizer: cfg.optimizer.name().to_owned(),
            seed: cfg.seed,
            total_samples,
        });

        let mut history = Vec::with_capacity(cfg.epochs);
        let mut samples_done: u64 = 0;
        let mut step: u64 = 0;
        for epoch in 0..cfg.epochs {
            let mut epoch_loss = 0.0f64;
            let mut epoch_batches = 0usize;
            let mut last_lr = cfg.lr;
            let epoch_batches_vec = batches_traced(
                train_images,
                train_labels,
                cfg.batch_size,
                Some(&mut rng),
                rec,
                epoch as u64,
            );
            for (batch_id, batch) in epoch_batches_vec.into_iter().enumerate() {
                let step_start = traced.then(Instant::now);
                let factor = self.schedule.factor(samples_done, total_samples) as f32;
                last_lr = cfg.lr * factor;
                opt.set_lr(last_lr);
                if let Some(m) = self.schedule.momentum(samples_done, total_samples) {
                    opt.set_momentum(m as f32);
                }
                opt.zero_grad();
                let images = if cfg.augment && batch.images.ndim() == 4 {
                    augment_hflip(&batch.images, &mut rng)
                } else {
                    batch.images.clone()
                };
                let mut g = Graph::new(true);
                let x = g.constant(images);
                let logits = model.forward(&mut g, x)?;
                let loss = g.cross_entropy(logits, &batch.labels)?;
                let batch_loss = g.value(loss).item() as f64;
                epoch_loss += batch_loss;
                epoch_batches += 1;
                g.backward(loss)?;
                let grad_norm = if let Some(max_norm) = cfg.grad_clip {
                    clip_grad_norm(opt.params(), max_norm)
                } else if traced {
                    global_grad_norm(opt.params())
                } else {
                    0.0
                };
                opt.step();
                samples_done += batch.labels.len() as u64;
                if traced {
                    rec.emit(Event::Step(StepRecord {
                        step,
                        epoch: epoch as u64,
                        batch_id: batch_id as u64,
                        lr: last_lr as f64,
                        loss: batch_loss,
                        grad_norm: grad_norm as f64,
                        param_norm: global_param_norm(opt.params()) as f64,
                        elapsed_ns: step_start
                            .map(|s| s.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64)
                            .unwrap_or(0),
                    }));
                }
                step += 1;
            }
            let val_loss = if needs_val {
                let vl = classification_loss(model, test_images, test_labels, cfg.batch_size)?;
                self.schedule.on_validation(vl);
                if traced {
                    rec.emit(Event::Validation {
                        epoch: epoch as u64,
                        loss: vl,
                    });
                }
                Some(vl)
            } else {
                None
            };
            let mean_loss = epoch_loss / epoch_batches.max(1) as f64;
            if traced {
                rec.emit(Event::EpochEnd {
                    epoch: epoch as u64,
                    mean_loss,
                    lr: last_lr as f64,
                });
            }
            history.push(EpochStats {
                train_loss: mean_loss,
                val_loss,
                lr: last_lr,
            });
        }

        let final_metric = evaluate_classifier(model, test_images, test_labels, cfg.batch_size)?;
        rec.emit(Event::RunEnd {
            metric: final_metric,
        });
        rec.flush();
        Ok(TrainResult {
            final_metric,
            history,
        })
    }
}

/// Test-set classification error (%) in eval mode.
///
/// # Errors
///
/// Propagates model forward errors.
pub fn evaluate_classifier(
    model: &dyn Module,
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
) -> Result<f64, TensorError> {
    let mut predictions = Vec::with_capacity(labels.len());
    for batch in batches(images, labels, batch_size, None) {
        let mut g = Graph::new(false);
        let x = g.constant(batch.images);
        let logits = model.forward(&mut g, x)?;
        predictions.extend(g.value(logits).argmax_rows()?);
    }
    Ok(rex_eval::stats::error_rate(&predictions, labels))
}

/// Mean test cross-entropy in eval mode (validation feedback for plateau
/// schedules).
///
/// # Errors
///
/// Propagates model forward errors.
pub fn classification_loss(
    model: &dyn Module,
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
) -> Result<f64, TensorError> {
    let mut total = 0.0f64;
    let mut count = 0usize;
    for batch in batches(images, labels, batch_size, None) {
        let mut g = Graph::new(false);
        let x = g.constant(batch.images);
        let logits = model.forward(&mut g, x)?;
        let loss = g.cross_entropy(logits, &batch.labels)?;
        total += g.value(loss).item() as f64 * batch.labels.len() as f64;
        count += batch.labels.len();
    }
    Ok(total / count.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_data::images::synth_cifar10;
    use rex_nn::Mlp;

    fn flatten_images(t: &Tensor) -> Tensor {
        let n = t.shape()[0];
        let d: usize = t.shape()[1..].iter().product();
        t.reshape(&[n, d]).unwrap()
    }

    #[test]
    fn training_beats_chance_on_synthetic_data() {
        let data = synth_cifar10(8, 4, 0);
        let mut rng = Prng::new(1);
        let model = Mlp::new("m", &[3 * 12 * 12, 32, 10], &mut rng);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 10,
            batch_size: 16,
            lr: 0.05,
            optimizer: OptimizerKind::sgdm(),
            schedule: ScheduleSpec::Rex,
            augment: false,
            grad_clip: None,
            seed: 2,
        });
        let result = trainer
            .train_classifier(
                &model,
                &flatten_images(&data.train_images),
                &data.train_labels,
                &flatten_images(&data.test_images),
                &data.test_labels,
            )
            .unwrap();
        // chance is 90% error on 10 classes
        assert!(
            result.final_metric < 85.0,
            "error {} not better than chance",
            result.final_metric
        );
        assert_eq!(result.history.len(), 10);
        // training loss should drop over the run
        assert!(result.history.last().unwrap().train_loss < result.history[0].train_loss);
    }

    #[test]
    fn schedule_decays_lr_within_budget() {
        let data = synth_cifar10(4, 2, 3);
        let mut rng = Prng::new(4);
        let model = Mlp::new("m", &[3 * 12 * 12, 8, 10], &mut rng);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 4,
            batch_size: 20,
            lr: 0.1,
            optimizer: OptimizerKind::sgdm(),
            schedule: ScheduleSpec::Linear,
            augment: false,
            grad_clip: None,
            seed: 5,
        });
        let result = trainer
            .train_classifier(
                &model,
                &flatten_images(&data.train_images),
                &data.train_labels,
                &flatten_images(&data.test_images),
                &data.test_labels,
            )
            .unwrap();
        // the last epoch's final LR must be far below the initial LR:
        // the linear schedule decays over the budget, not the max epochs
        let last_lr = result.history.last().unwrap().lr;
        assert!(last_lr < 0.03, "linear schedule did not decay: {last_lr}");
    }

    #[test]
    fn plateau_schedule_triggers_validation_passes() {
        let data = synth_cifar10(4, 2, 6);
        let mut rng = Prng::new(7);
        let model = Mlp::new("m", &[3 * 12 * 12, 8, 10], &mut rng);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 3,
            batch_size: 20,
            lr: 0.05,
            optimizer: OptimizerKind::adam(),
            schedule: ScheduleSpec::DecayOnPlateau(1),
            augment: false,
            grad_clip: None,
            seed: 8,
        });
        let result = trainer
            .train_classifier(
                &model,
                &flatten_images(&data.train_images),
                &data.train_labels,
                &flatten_images(&data.test_images),
                &data.test_labels,
            )
            .unwrap();
        assert!(result.history.iter().all(|e| e.val_loss.is_some()));

        // non-plateau schedules skip the validation pass
        let mut trainer2 = Trainer::new(TrainConfig {
            epochs: 1,
            batch_size: 20,
            lr: 0.05,
            optimizer: OptimizerKind::adam(),
            schedule: ScheduleSpec::Cosine,
            augment: false,
            grad_clip: None,
            seed: 8,
        });
        let r2 = trainer2
            .train_classifier(
                &model,
                &flatten_images(&data.train_images),
                &data.train_labels,
                &flatten_images(&data.test_images),
                &data.test_labels,
            )
            .unwrap();
        assert!(r2.history.iter().all(|e| e.val_loss.is_none()));
    }

    #[test]
    fn deterministic_given_seed() {
        let data = synth_cifar10(4, 2, 9);
        let run = || {
            let mut rng = Prng::new(10);
            let model = Mlp::new("m", &[3 * 12 * 12, 8, 10], &mut rng);
            let mut trainer = Trainer::new(TrainConfig {
                epochs: 2,
                batch_size: 20,
                lr: 0.05,
                optimizer: OptimizerKind::sgdm(),
                schedule: ScheduleSpec::Rex,
                augment: true,
                grad_clip: None,
                seed: 11,
            });
            trainer
                .train_classifier(
                    &model,
                    &flatten_images(&data.train_images),
                    &data.train_labels,
                    &flatten_images(&data.test_images),
                    &data.test_labels,
                )
                .unwrap()
                .final_metric
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn partial_final_batch_advances_budget_by_its_true_size() {
        use rex_telemetry::MemorySink;

        // 10 samples, batch 4 → batches of 4, 4, 2. Sample-exact accounting
        // must place the three steps of a 1-epoch linear run at progress
        // 0/10, 4/10, 8/10 (LR factors 1.0, 0.6, 0.2); the old per-step
        // accounting would have used 0/3, 1/3, 2/3.
        let data = synth_cifar10(1, 1, 12);
        let mut rng = Prng::new(13);
        let model = Mlp::new("m", &[3 * 12 * 12, 8, 10], &mut rng);
        let sink = MemorySink::unbounded();
        let handle = sink.handle();
        let mut rec = Recorder::new(Box::new(sink));
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 1,
            batch_size: 4,
            lr: 0.1,
            optimizer: OptimizerKind::sgdm(),
            schedule: ScheduleSpec::Linear,
            augment: false,
            grad_clip: None,
            seed: 14,
        });
        trainer
            .train_classifier_traced(
                &model,
                &flatten_images(&data.train_images),
                &data.train_labels,
                &flatten_images(&data.test_images),
                &data.test_labels,
                &mut rec,
            )
            .unwrap();
        let steps = handle.steps();
        assert_eq!(steps.len(), 3);
        let lrs: Vec<f64> = steps.iter().map(|r| r.lr).collect();
        for (got, want) in lrs.iter().zip([0.1, 0.06, 0.02]) {
            assert!((got - want).abs() < 1e-7, "lrs {lrs:?}");
        }
    }

    #[test]
    fn traced_run_emits_one_step_record_per_optimizer_step() {
        use rex_telemetry::MemorySink;

        let data = synth_cifar10(4, 2, 15);
        let mut rng = Prng::new(16);
        let model = Mlp::new("m", &[3 * 12 * 12, 8, 10], &mut rng);
        let sink = MemorySink::unbounded();
        let handle = sink.handle();
        let mut rec = Recorder::new(Box::new(sink));
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 2,
            batch_size: 16,
            lr: 0.05,
            optimizer: OptimizerKind::adam(),
            schedule: ScheduleSpec::Rex,
            augment: false,
            grad_clip: None,
            seed: 17,
        });
        let result = trainer
            .train_classifier_traced(
                &model,
                &flatten_images(&data.train_images),
                &data.train_labels,
                &flatten_images(&data.test_images),
                &data.test_labels,
                &mut rec,
            )
            .unwrap();
        let events = handle.events();
        // 40 samples / batch 16 → 3 batches per epoch × 2 epochs
        let steps = handle.steps();
        assert_eq!(steps.len(), 6);
        for (i, r) in steps.iter().enumerate() {
            assert_eq!(r.step, i as u64);
            assert_eq!(r.epoch, i as u64 / 3);
            assert_eq!(r.batch_id, i as u64 % 3);
            assert!(r.lr > 0.0 && r.lr <= 0.05 + 1e-9);
            assert!(r.loss.is_finite());
            assert!(r.grad_norm > 0.0, "grad_norm not populated: {r:?}");
            assert!(r.param_norm > 0.0, "param_norm not populated: {r:?}");
        }
        // structural events frame the run
        assert_eq!(events.first().unwrap().kind(), "run_start");
        assert_eq!(events.last().unwrap().kind(), "run_end");
        match events.last().unwrap() {
            Event::RunEnd { metric } => assert_eq!(*metric, result.final_metric),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            events.iter().filter(|e| e.kind() == "epoch").count(),
            2,
            "one loader epoch event per epoch"
        );

        // tracing must not perturb the trajectory: an untraced same-seed
        // run reaches the identical final metric
        let mut rng2 = Prng::new(16);
        let model2 = Mlp::new("m", &[3 * 12 * 12, 8, 10], &mut rng2);
        let mut trainer2 = Trainer::new(TrainConfig {
            epochs: 2,
            batch_size: 16,
            lr: 0.05,
            optimizer: OptimizerKind::adam(),
            schedule: ScheduleSpec::Rex,
            augment: false,
            grad_clip: None,
            seed: 17,
        });
        let r2 = trainer2
            .train_classifier(
                &model2,
                &flatten_images(&data.train_images),
                &data.train_labels,
                &flatten_images(&data.test_images),
                &data.test_labels,
            )
            .unwrap();
        assert_eq!(r2.final_metric, result.final_metric);
    }

    #[test]
    fn optimizer_kind_names_and_defaults() {
        assert_eq!(OptimizerKind::sgdm().name(), "SGDM");
        assert_eq!(OptimizerKind::adam().name(), "Adam");
        assert_eq!(OptimizerKind::adamw().name(), "AdamW");
        assert!(OptimizerKind::sgdm().default_lr() > OptimizerKind::adam().default_lr());
    }
}
