use crate::error::TrainError;
use crate::lineage::Lineage;
use crate::snapshot::TrainState;
use rex_autograd::{Graph, Param};
use rex_core::{Schedule, ScheduleSpec};
use rex_data::{augment_hflip, batches, batches_traced};
use rex_nn::{checkpoint, Module};
use rex_optim::{clip_grad_norm, global_grad_norm, global_param_norm, Adam, Optimizer, Sgd};
use rex_telemetry::span::span;
use rex_telemetry::{Event, Recorder, StepRecord};
use rex_tensor::{DType, Prng, Tensor, TensorError};
use std::path::PathBuf;
use std::time::Instant;

/// Which optimizer family to instantiate (the paper pairs every schedule
/// with both SGDM and Adam; the BERT setting uses AdamW).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimizerKind {
    /// SGD with momentum (default β = 0.9).
    Sgdm {
        /// Momentum coefficient.
        momentum: f32,
        /// L2 weight decay.
        weight_decay: f32,
    },
    /// Adam with optional coupled L2 decay.
    Adam {
        /// L2 weight decay (coupled).
        weight_decay: f32,
    },
    /// AdamW (decoupled decay).
    AdamW {
        /// Decoupled weight decay.
        weight_decay: f32,
    },
}

impl OptimizerKind {
    /// The paper's standard SGDM (β = 0.9, light decay).
    pub fn sgdm() -> Self {
        OptimizerKind::Sgdm {
            momentum: 0.9,
            weight_decay: 5e-4,
        }
    }

    /// The paper's standard Adam.
    pub fn adam() -> Self {
        OptimizerKind::Adam { weight_decay: 0.0 }
    }

    /// AdamW as used for BERT fine-tuning.
    pub fn adamw() -> Self {
        OptimizerKind::AdamW { weight_decay: 0.01 }
    }

    /// Display name matching the paper's table headers.
    pub fn name(&self) -> &'static str {
        match self {
            OptimizerKind::Sgdm { .. } => "SGDM",
            OptimizerKind::Adam { .. } => "Adam",
            OptimizerKind::AdamW { .. } => "AdamW",
        }
    }

    /// Instantiates the optimizer over `params` at the given initial LR.
    pub fn build(&self, params: Vec<Param>, lr: f32) -> Box<dyn Optimizer> {
        match *self {
            OptimizerKind::Sgdm {
                momentum,
                weight_decay,
            } => Box::new(
                Sgd::new(params, lr)
                    .with_momentum(momentum)
                    .with_weight_decay(weight_decay),
            ),
            OptimizerKind::Adam { weight_decay } => {
                let mut a = Adam::new(params, lr);
                if weight_decay > 0.0 {
                    a = a.with_weight_decay(weight_decay);
                }
                Box::new(a)
            }
            OptimizerKind::AdamW { weight_decay } => {
                Box::new(Adam::adamw(params, lr, weight_decay))
            }
        }
    }

    /// A sensible tuned default initial LR for this optimizer family on the
    /// micro-models (the starting point for ×3 tuning). These sit at the
    /// top of the stable range — the operating point per-schedule tuning
    /// selects in the paper, where decaying schedules can exploit a large
    /// initial step.
    pub fn default_lr(&self) -> f32 {
        match self {
            OptimizerKind::Sgdm { .. } => 0.1,
            OptimizerKind::Adam { .. } => 1e-2,
            OptimizerKind::AdamW { .. } => 3e-3,
        }
    }
}

/// What the trainer does when a numeric guard observes a non-finite loss
/// or gradient norm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GuardPolicy {
    /// Guards disabled (no extra norm computation when untraced).
    #[default]
    Off,
    /// Return [`TrainError::NonFinite`] naming the step and the offending
    /// tensor.
    Abort,
    /// Drop the step — no optimizer update, no loss accumulation — but
    /// advance the budget clock by the batch's samples and move on.
    SkipStep,
    /// Restore the last checkpoint (model, optimizer, RNG, progress) and
    /// re-run from there; a second trip at the same step aborts.
    Rollback,
}

impl GuardPolicy {
    /// Short action label used in telemetry and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            GuardPolicy::Off => "off",
            GuardPolicy::Abort => "abort",
            GuardPolicy::SkipStep => "skip",
            GuardPolicy::Rollback => "rollback",
        }
    }

    /// Parses a CLI spelling (`off`, `abort`, `skip`, `rollback`).
    ///
    /// # Errors
    ///
    /// Returns a descriptive message for unknown spellings.
    pub fn parse(s: &str) -> Result<GuardPolicy, String> {
        match s {
            "off" => Ok(GuardPolicy::Off),
            "abort" => Ok(GuardPolicy::Abort),
            "skip" => Ok(GuardPolicy::SkipStep),
            "rollback" => Ok(GuardPolicy::Rollback),
            other => Err(format!(
                "unknown guard policy {other:?} (expected off|abort|skip|rollback)"
            )),
        }
    }
}

/// Fault-tolerance knobs: checkpointing, resume, numeric guards, and
/// deliberate halts. The default is everything off — zero overhead.
#[derive(Debug, Clone, Default)]
pub struct FtConfig {
    /// Write a [`TrainState`] snapshot every N optimizer steps.
    pub checkpoint_every: Option<u64>,
    /// Where snapshots are written (required with `checkpoint_every`).
    pub checkpoint_path: Option<PathBuf>,
    /// Resume from this snapshot instead of starting fresh.
    pub resume_from: Option<PathBuf>,
    /// Numeric-guard policy for non-finite losses/gradients.
    pub guard: GuardPolicy,
    /// Stop cleanly with [`TrainError::Halted`] after this step completes
    /// (its checkpoint included) — deterministic in-process "kill".
    pub halt_after_step: Option<u64>,
    /// Cooperative cancellation: checked once per optimizer step (after
    /// the step's checkpoint, like `halt_after_step`); when another
    /// thread sets it, the run stops with [`TrainError::Halted`]. The
    /// snapshot on disk (if checkpointing is on) resumes the run.
    pub stop_flag: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    /// Retain this many snapshot generations instead of one file: with
    /// this set, `checkpoint_path` names a *directory* and every
    /// checkpoint writes a fresh `state.NNNNN.rexstate` generation
    /// through [`Lineage`] (rotating out the oldest). Resume from the
    /// directory falls back over damaged generations. Requires
    /// `checkpoint_every`; minimum 1.
    pub keep_checkpoints: Option<usize>,
    /// Also snapshot when the run halts (via `halt_after_step` or the
    /// stop flag) at a step that is not a checkpoint multiple. The
    /// halt-time snapshot emits *no* trace event — the trace stays
    /// byte-identical to an uninterrupted run's — it only moves the
    /// resume point forward so a drain loses no completed steps.
    pub checkpoint_on_halt: bool,
    /// Liveness heartbeat: when set, the last completed optimizer step is
    /// stored here every step. A supervisor can watch it to detect a run
    /// that stopped making progress (hung I/O, live-locked backend).
    pub heartbeat: Option<std::sync::Arc<std::sync::atomic::AtomicU64>>,
}

impl FtConfig {
    /// Whether the cooperative stop flag is set.
    fn stop_requested(&self) -> bool {
        self.stop_flag
            .as_ref()
            .is_some_and(|f| f.load(std::sync::atomic::Ordering::Acquire))
    }
}

/// Configuration of one training run.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of (budgeted) epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initial learning rate η₀.
    pub lr: f32,
    /// Optimizer family.
    pub optimizer: OptimizerKind,
    /// Schedule specification (built fresh inside the run).
    pub schedule: ScheduleSpec,
    /// Random horizontal flip augmentation (image classification only).
    pub augment: bool,
    /// Gradient clipping threshold (global L2 norm), if any.
    pub grad_clip: Option<f32>,
    /// RNG seed for shuffling/augmentation.
    pub seed: u64,
    /// Parameter storage precision. `F32` is the legacy bit-exact path;
    /// `F16`/`Bf16` keep all arithmetic in f32 (master weights) but round
    /// stored parameters, optimizer state, and buffers to the narrow
    /// dtype after every step, halving checkpoint tensor sections.
    pub dtype: DType,
    /// Fault-tolerance settings (checkpoint/resume/guards); default off.
    pub ft: FtConfig,
}

impl TrainConfig {
    /// A classification config with common defaults.
    pub fn new(epochs: usize, optimizer: OptimizerKind, schedule: ScheduleSpec, seed: u64) -> Self {
        TrainConfig {
            epochs,
            batch_size: 32,
            lr: optimizer.default_lr(),
            optimizer,
            schedule,
            augment: true,
            grad_clip: None,
            seed,
            dtype: DType::F32,
            ft: FtConfig::default(),
        }
    }
}

/// Per-epoch diagnostics collected during a run.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Mean training loss over the epoch.
    pub train_loss: f64,
    /// Validation loss, when computed (plateau schedules).
    pub val_loss: Option<f64>,
    /// Learning rate at the epoch's last iteration.
    pub lr: f32,
}

/// Result of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainResult {
    /// Final evaluation metric (test error %, loss, …; task-defined).
    pub final_metric: f64,
    /// Per-epoch history.
    pub history: Vec<EpochStats>,
}

/// The generic budget-aware training loop.
///
/// `Trainer` is deliberately model-agnostic: the caller supplies closures
/// for the per-batch loss and (optionally) the per-epoch validation loss.
/// The schedule is stepped **per iteration** against the budgeted total
/// step count, exactly as the paper prescribes.
pub struct Trainer {
    config: TrainConfig,
    schedule: Box<dyn Schedule>,
}

impl std::fmt::Debug for Trainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Trainer({:?}, schedule {})",
            self.config,
            self.schedule.name()
        )
    }
}

impl Trainer {
    /// Builds a trainer, instantiating a fresh schedule from the config.
    pub fn new(config: TrainConfig) -> Self {
        let schedule = config.schedule.build();
        Trainer { config, schedule }
    }

    /// The run configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Runs the loop over an image-classification dataset with the given
    /// model, returning the final test error (%) and history.
    ///
    /// # Errors
    ///
    /// Propagates [`TensorError`]s from the model's forward/backward
    /// (as [`TrainError::Tensor`]) plus any fault-tolerance failure.
    pub fn train_classifier(
        &mut self,
        model: &dyn Module,
        train_images: &Tensor,
        train_labels: &[usize],
        test_images: &Tensor,
        test_labels: &[usize],
    ) -> Result<TrainResult, TrainError> {
        self.train_classifier_traced(
            model,
            train_images,
            train_labels,
            test_images,
            test_labels,
            &mut Recorder::disabled(),
        )
    }

    /// [`Trainer::train_classifier`] with telemetry: emits run/epoch
    /// boundaries, one [`StepRecord`] per optimizer step (applied LR, batch
    /// loss, pre-clip gradient norm, post-step parameter norm), validation
    /// passes, and the final metric into `rec`. With a disabled recorder
    /// this is exactly the plain loop — norms are not even computed
    /// (unless a numeric guard needs them).
    ///
    /// With `cfg.ft.checkpoint_every` set, a full [`TrainState`] is
    /// written crash-consistently every N steps; `cfg.ft.resume_from`
    /// restores one and continues bit-for-bit — the finished trace is
    /// byte-identical to an uninterrupted run's.
    ///
    /// # Errors
    ///
    /// Propagates [`TensorError`]s from the model's forward/backward
    /// (as [`TrainError::Tensor`]), checkpoint/resume failures, guard
    /// aborts, and the deliberate [`TrainError::Halted`].
    pub fn train_classifier_traced(
        &mut self,
        model: &dyn Module,
        train_images: &Tensor,
        train_labels: &[usize],
        test_images: &Tensor,
        test_labels: &[usize],
        rec: &mut Recorder,
    ) -> Result<TrainResult, TrainError> {
        let cfg = self.config.clone();
        let ft = cfg.ft.clone();
        self.validate_ft(&ft)?;
        if !cfg.dtype.trainable() {
            return Err(TrainError::Config(format!(
                "{} is not a trainable dtype (expected f32 | f16 | bf16)",
                cfg.dtype
            )));
        }
        let mut opt = cfg.optimizer.build(model.params(), cfg.lr);
        opt.set_param_dtype(cfg.dtype);
        if cfg.dtype != DType::F32 {
            // project the fresh initialisation onto the storage grid; from
            // here the optimizer's per-step rounding keeps params there
            for p in opt.params() {
                cfg.dtype.round_slice(p.value_mut().data_mut());
            }
            round_buffers(cfg.dtype, model);
        }
        let traced = rec.is_enabled();
        opt.set_instrumented(traced);
        let guard_on = ft.guard != GuardPolicy::Off;
        // Budget accounting is sample-exact: schedule progress advances by
        // the number of samples actually consumed, so a partial final
        // mini-batch moves the clock by its true size rather than a full
        // step. (When the dataset size divides the batch size the
        // progress fractions — and therefore the LR trajectory — are
        // identical to per-step accounting.)
        let total_samples = train_labels.len() as u64 * cfg.epochs as u64;
        let needs_val = cfg.schedule.needs_validation_feedback();

        let mut rng = Prng::new(cfg.seed);
        let mut st = LoopSt::fresh(cfg.lr, cfg.epochs);
        if let Some(resume_path) = &ft.resume_from {
            // a directory is a checkpoint lineage: resolve the newest
            // generation that validates, falling back over damaged ones
            let state = if resume_path.is_dir() {
                Lineage::resolve(resume_path).map(|(state, _, _)| state)
            } else {
                TrainState::load(resume_path)
            }
            .map_err(|source| TrainError::Checkpoint {
                action: "load",
                path: resume_path.clone(),
                source,
            })?;
            self.check_resume(&state, &cfg, total_samples)?;
            restore_from(&state, model, opt.as_mut(), &mut rng, &mut st, rec)?;
            rec.emit(Event::Resume { step: st.step });
        } else {
            rec.emit(Event::RunStart {
                run: "classifier".to_owned(),
                schedule: self.schedule.name().to_owned(),
                optimizer: cfg.optimizer.name().to_owned(),
                seed: cfg.seed,
                total_samples,
            });
        }

        // rollback target: the last checkpoint, kept in memory alongside
        // the on-disk file so restoring needs no I/O
        let mut mem_snap: Option<TrainState> = None;
        let mut rolled_back_at: Option<u64> = None;
        let mut last_ckpt_step: Option<u64> = None;

        // profiling spans never touch the Recorder, so the deterministic
        // trace stays byte-identical with profiling on; the span *tree*
        // (names and nesting) is itself a pure function of the config
        let _job_span = span("job");
        'run: while (st.epoch as usize) < cfg.epochs {
            let _epoch_span = span("epoch");
            let batch_vec = if st.mid_epoch {
                st.mid_epoch = false;
                // Rebuild the in-flight epoch's batch order by replaying
                // the saved pre-shuffle RNG state; the live stream `rng`
                // already sits past the shuffle (and every completed
                // batch's augmentation), exactly where the uninterrupted
                // run was. The Epoch event is in the trace prefix — not
                // re-emitted.
                let mut epoch_rng = Prng::from_state(st.rng_epoch_start);
                batches(
                    train_images,
                    train_labels,
                    cfg.batch_size,
                    Some(&mut epoch_rng),
                )
            } else {
                st.rng_epoch_start = rng.state();
                st.batch_in_epoch = 0;
                st.epoch_loss = 0.0;
                st.epoch_batches = 0;
                batches_traced(
                    train_images,
                    train_labels,
                    cfg.batch_size,
                    Some(&mut rng),
                    rec,
                    st.epoch,
                )
            };
            while (st.batch_in_epoch as usize) < batch_vec.len() {
                let _step_span = span("step");
                let batch = &batch_vec[st.batch_in_epoch as usize];
                let step_start = traced.then(Instant::now);
                let factor = self.schedule.factor(st.samples_done, total_samples) as f32;
                st.last_lr = cfg.lr * factor;
                opt.set_lr(st.last_lr);
                if let Some(m) = self.schedule.momentum(st.samples_done, total_samples) {
                    opt.set_momentum(m as f32);
                }
                opt.zero_grad();
                let data_span = span("data");
                let images = if cfg.augment && batch.images.ndim() == 4 {
                    augment_hflip(&batch.images, &mut rng)
                } else {
                    batch.images.clone()
                };
                drop(data_span);
                let fwd_span = span("forward");
                let mut g = Graph::new(true);
                let x = g.constant(images);
                let logits = model.forward(&mut g, x)?;
                let loss = g.cross_entropy(logits, &batch.labels)?;
                let mut batch_loss = g.value(loss).item() as f64;
                drop(fwd_span);
                if rex_faults::poison_loss(st.step) {
                    batch_loss = f64::NAN;
                }
                if guard_on && !batch_loss.is_finite() {
                    match self.trip_guard(
                        &ft,
                        "loss".to_owned(),
                        batch_loss,
                        batch.labels.len() as u64,
                        &mut st,
                        &mut rolled_back_at,
                        &mem_snap,
                        model,
                        opt.as_mut(),
                        &mut rng,
                        rec,
                    )? {
                        GuardOutcome::SkipBatch => continue,
                        GuardOutcome::RestartFromSnapshot => continue 'run,
                    }
                }
                st.epoch_loss += batch_loss;
                st.epoch_batches += 1;
                let bwd_span = span("backward");
                g.backward(loss)?;
                drop(bwd_span);
                if let Some(seed_idx) = rex_faults::poison_grad(st.step) {
                    let params = opt.params();
                    if !params.is_empty() {
                        params[seed_idx % params.len()].grad_mut().data_mut()[0] = f32::NAN;
                    }
                }
                let opt_span = span("optimizer");
                let grad_norm = if let Some(max_norm) = cfg.grad_clip {
                    clip_grad_norm(opt.params(), max_norm)
                } else if traced || guard_on {
                    global_grad_norm(opt.params())
                } else {
                    0.0
                };
                if guard_on && !grad_norm.is_finite() {
                    // the accumulators already counted this batch; undo so
                    // skip/rollback leave them consistent
                    st.epoch_loss -= batch_loss;
                    st.epoch_batches -= 1;
                    let what = offending_grad(opt.params());
                    match self.trip_guard(
                        &ft,
                        what,
                        grad_norm as f64,
                        batch.labels.len() as u64,
                        &mut st,
                        &mut rolled_back_at,
                        &mem_snap,
                        model,
                        opt.as_mut(),
                        &mut rng,
                        rec,
                    )? {
                        GuardOutcome::SkipBatch => continue,
                        GuardOutcome::RestartFromSnapshot => continue 'run,
                    }
                }
                opt.step();
                if cfg.dtype != DType::F32 {
                    // batch-norm running stats were updated by the forward
                    // pass in full precision; round them like the params so
                    // a checkpoint serializes them losslessly
                    round_buffers(cfg.dtype, model);
                }
                drop(opt_span);
                st.samples_done += batch.labels.len() as u64;
                if traced {
                    rec.emit(Event::Step(StepRecord {
                        step: st.step,
                        epoch: st.epoch,
                        batch_id: st.batch_in_epoch,
                        lr: st.last_lr as f64,
                        loss: batch_loss,
                        grad_norm: grad_norm as f64,
                        param_norm: global_param_norm(opt.params()) as f64,
                        elapsed_ns: step_start
                            .map(|s| s.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64)
                            .unwrap_or(0),
                    }));
                }
                st.batch_in_epoch += 1;
                st.step += 1;
                if let Some(hb) = &ft.heartbeat {
                    hb.store(st.step, std::sync::atomic::Ordering::Release);
                }

                if let Some(every) = ft.checkpoint_every {
                    if st.step.is_multiple_of(every) {
                        let _ckpt_span = span("checkpoint");
                        // cursor ordering: the checkpoint line joins the
                        // deterministic stream first, then the flush makes
                        // the whole prefix durable, then the snapshot
                        // records the cursor — a resume truncates the
                        // trace to exactly this prefix
                        rec.emit(Event::Checkpoint { step: st.step });
                        rec.flush();
                        let state = capture_state(
                            &cfg,
                            &st,
                            &rng,
                            opt.as_ref(),
                            model,
                            rec.lines_emitted(),
                            total_samples,
                            &self.schedule.name(),
                        );
                        write_snapshot(&ft, &state)?;
                        last_ckpt_step = Some(st.step);
                        if ft.guard == GuardPolicy::Rollback {
                            mem_snap = Some(state);
                        }
                    }
                }
                rex_faults::crash_point(st.step);
                if ft.halt_after_step == Some(st.step) || ft.stop_requested() {
                    if ft.checkpoint_on_halt
                        && ft.checkpoint_every.is_some()
                        && last_ckpt_step != Some(st.step)
                    {
                        // snapshot at the halt boundary with *no* trace
                        // event: the cursor covers exactly the flushed
                        // deterministic prefix, so the resumed trace is
                        // still byte-identical to an uninterrupted run's
                        rec.flush();
                        let state = capture_state(
                            &cfg,
                            &st,
                            &rng,
                            opt.as_ref(),
                            model,
                            rec.lines_emitted(),
                            total_samples,
                            &self.schedule.name(),
                        );
                        write_snapshot(&ft, &state)?;
                    }
                    rec.flush();
                    return Err(TrainError::Halted { step: st.step });
                }
            }
            let val_loss = if needs_val {
                let _val_span = span("validation");
                let vl = classification_loss(model, test_images, test_labels, cfg.batch_size)?;
                self.schedule.on_validation(vl);
                if traced {
                    rec.emit(Event::Validation {
                        epoch: st.epoch,
                        loss: vl,
                    });
                }
                Some(vl)
            } else {
                None
            };
            let mean_loss = st.epoch_loss / st.epoch_batches.max(1) as f64;
            if traced {
                rec.emit(Event::EpochEnd {
                    epoch: st.epoch,
                    mean_loss,
                    lr: st.last_lr as f64,
                });
            }
            st.history.push(EpochStats {
                train_loss: mean_loss,
                val_loss,
                lr: st.last_lr,
            });
            st.epoch += 1;
        }

        let final_metric = evaluate_classifier(model, test_images, test_labels, cfg.batch_size)?;
        rec.emit(Event::RunEnd {
            metric: final_metric,
        });
        rec.flush();
        Ok(TrainResult {
            final_metric,
            history: st.history,
        })
    }

    fn validate_ft(&self, ft: &FtConfig) -> Result<(), TrainError> {
        if ft.checkpoint_every == Some(0) {
            return Err(TrainError::Config(
                "checkpoint interval must be at least 1 step".to_owned(),
            ));
        }
        if ft.checkpoint_every.is_some() && ft.checkpoint_path.is_none() {
            return Err(TrainError::Config(
                "checkpoint_every is set but checkpoint_path is not".to_owned(),
            ));
        }
        if ft.keep_checkpoints == Some(0) {
            return Err(TrainError::Config(
                "keep_checkpoints must be at least 1 generation".to_owned(),
            ));
        }
        if ft.keep_checkpoints.is_some() && ft.checkpoint_every.is_none() {
            return Err(TrainError::Config(
                "keep_checkpoints is set but checkpoint_every is not".to_owned(),
            ));
        }
        if (ft.checkpoint_every.is_some() || ft.resume_from.is_some()) && self.schedule.stateful() {
            return Err(TrainError::Config(format!(
                "schedule {:?} reacts to validation feedback, which a snapshot cannot \
                 capture; checkpoint/resume is unavailable for it",
                self.schedule.name()
            )));
        }
        if ft.guard == GuardPolicy::Rollback && ft.checkpoint_every.is_none() {
            return Err(TrainError::Config(
                "guard policy rollback requires checkpoint_every".to_owned(),
            ));
        }
        Ok(())
    }

    fn check_resume(
        &self,
        state: &TrainState,
        cfg: &TrainConfig,
        total_samples: u64,
    ) -> Result<(), TrainError> {
        let mismatch = |field: &str, run: String, ckpt: String| {
            Err(TrainError::Resume(format!(
                "{field} mismatch: run has {run}, checkpoint has {ckpt}"
            )))
        };
        if state.run != "classifier" {
            return mismatch("run kind", "classifier".to_owned(), state.run.clone());
        }
        if state.schedule != self.schedule.name() {
            return mismatch("schedule", self.schedule.name(), state.schedule.clone());
        }
        if state.optimizer != cfg.optimizer.name() {
            return mismatch(
                "optimizer",
                cfg.optimizer.name().to_owned(),
                state.optimizer.clone(),
            );
        }
        if state.seed != cfg.seed {
            return mismatch("seed", cfg.seed.to_string(), state.seed.to_string());
        }
        if state.batch_size != cfg.batch_size as u64 {
            return mismatch(
                "batch size",
                cfg.batch_size.to_string(),
                state.batch_size.to_string(),
            );
        }
        if state.epochs != cfg.epochs as u64 {
            return mismatch("epochs", cfg.epochs.to_string(), state.epochs.to_string());
        }
        if state.lr.to_bits() != cfg.lr.to_bits() {
            return mismatch("initial lr", cfg.lr.to_string(), state.lr.to_string());
        }
        if state.dtype != cfg.dtype {
            return mismatch("dtype", cfg.dtype.to_string(), state.dtype.to_string());
        }
        if state.total_samples != total_samples {
            return mismatch(
                "dataset size (total samples)",
                total_samples.to_string(),
                state.total_samples.to_string(),
            );
        }
        Ok(())
    }

    /// Handles one numeric-guard trip. Returns how the loop should
    /// proceed, or the abort error.
    #[allow(clippy::too_many_arguments)]
    fn trip_guard(
        &mut self,
        ft: &FtConfig,
        what: String,
        value: f64,
        batch_samples: u64,
        st: &mut LoopSt,
        rolled_back_at: &mut Option<u64>,
        mem_snap: &Option<TrainState>,
        model: &dyn Module,
        opt: &mut dyn Optimizer,
        rng: &mut Prng,
        rec: &mut Recorder,
    ) -> Result<GuardOutcome, TrainError> {
        rec.emit(Event::GuardTrip {
            step: st.step,
            what: what.clone(),
            value,
            action: ft.guard.name().to_owned(),
        });
        match ft.guard {
            GuardPolicy::Off | GuardPolicy::Abort => {
                rec.flush();
                Err(TrainError::NonFinite {
                    step: st.step,
                    what,
                    value,
                })
            }
            GuardPolicy::SkipStep => {
                // the step is dropped but its samples still count toward
                // the budget clock — the schedule keeps decaying on real
                // time, and a repeatable injection does not loop forever
                st.samples_done += batch_samples;
                st.batch_in_epoch += 1;
                st.step += 1;
                Ok(GuardOutcome::SkipBatch)
            }
            GuardPolicy::Rollback => {
                if *rolled_back_at == Some(st.step) {
                    rec.flush();
                    return Err(TrainError::NonFinite {
                        step: st.step,
                        what: format!("{what} (again after rollback)"),
                        value,
                    });
                }
                let Some(snap) = mem_snap else {
                    rec.flush();
                    return Err(TrainError::Resume(
                        "rollback requested before any checkpoint was taken".to_owned(),
                    ));
                };
                *rolled_back_at = Some(st.step);
                restore_from(snap, model, opt, rng, st, rec)?;
                Ok(GuardOutcome::RestartFromSnapshot)
            }
        }
    }
}

/// How the training loop continues after a guard trip that did not abort.
enum GuardOutcome {
    /// Skip this batch and continue the inner loop.
    SkipBatch,
    /// State was restored from the last checkpoint; restart the epoch
    /// loop (mid-epoch).
    RestartFromSnapshot,
}

/// Mutable position of the training loop — everything a snapshot captures
/// besides the model/optimizer tensors.
struct LoopSt {
    epoch: u64,
    batch_in_epoch: u64,
    step: u64,
    samples_done: u64,
    epoch_loss: f64,
    epoch_batches: u64,
    last_lr: f32,
    history: Vec<EpochStats>,
    /// RNG state immediately before the current epoch's shuffle.
    rng_epoch_start: [u64; 4],
    /// Entered the epoch loop with restored mid-epoch state: rebuild the
    /// batch order from `rng_epoch_start` instead of shuffling afresh.
    mid_epoch: bool,
}

impl LoopSt {
    fn fresh(lr: f32, epochs: usize) -> Self {
        LoopSt {
            epoch: 0,
            batch_in_epoch: 0,
            step: 0,
            samples_done: 0,
            epoch_loss: 0.0,
            epoch_batches: 0,
            last_lr: lr,
            history: Vec::with_capacity(epochs),
            rng_epoch_start: [0; 4],
            mid_epoch: false,
        }
    }
}

/// Routes a captured snapshot to disk: a rotating [`Lineage`] generation
/// when `keep_checkpoints` is set, the single `checkpoint_path` file
/// otherwise.
fn write_snapshot(ft: &FtConfig, state: &TrainState) -> Result<(), TrainError> {
    let path = ft.checkpoint_path.as_ref().expect("validated upfront");
    let result = match ft.keep_checkpoints {
        Some(keep) => Lineage::new(path, keep).save(state).map(|_| ()),
        None => state.save(path),
    };
    result.map_err(|source| TrainError::Checkpoint {
        action: "save",
        path: path.clone(),
        source,
    })
}

/// Installs a snapshot into the live training objects (model params,
/// optimizer internals, RNG stream, loop position, telemetry cursor).
/// Shared by resume-from-file and in-memory rollback.
fn restore_from(
    state: &TrainState,
    model: &dyn Module,
    opt: &mut dyn Optimizer,
    rng: &mut Prng,
    st: &mut LoopSt,
    rec: &mut Recorder,
) -> Result<(), TrainError> {
    checkpoint::restore_params(&state.model, &model.params()).map_err(TrainError::Resume)?;
    let live = model.buffers();
    if live.len() != state.buffers.len() {
        return Err(TrainError::Resume(format!(
            "model has {} buffers, checkpoint has {}",
            live.len(),
            state.buffers.len()
        )));
    }
    for (name, cell) in live {
        let saved = state
            .buffers
            .iter()
            .find(|(n, _)| *n == name)
            .ok_or_else(|| TrainError::Resume(format!("checkpoint is missing buffer {name:?}")))?;
        if saved.1.shape() != cell.borrow().shape() {
            return Err(TrainError::Resume(format!(
                "buffer {name:?} has shape {:?}, checkpoint has {:?}",
                cell.borrow().shape(),
                saved.1.shape()
            )));
        }
        *cell.borrow_mut() = saved.1.clone();
    }
    opt.import_state(&state.optim).map_err(TrainError::Resume)?;
    *rng = Prng::from_state(state.rng);
    rec.set_lines_emitted(state.trace_events);
    *st = LoopSt {
        epoch: state.epoch,
        batch_in_epoch: state.batch_in_epoch,
        step: state.step,
        samples_done: state.samples_done,
        epoch_loss: state.epoch_loss,
        epoch_batches: state.epoch_batches,
        last_lr: state.last_lr,
        history: state.history.clone(),
        rng_epoch_start: state.rng_epoch_start,
        mid_epoch: true,
    };
    Ok(())
}

/// Photographs the live training objects into a [`TrainState`].
#[allow(clippy::too_many_arguments)]
fn capture_state(
    cfg: &TrainConfig,
    st: &LoopSt,
    rng: &Prng,
    opt: &dyn Optimizer,
    model: &dyn Module,
    trace_events: u64,
    total_samples: u64,
    schedule_name: &str,
) -> TrainState {
    TrainState {
        run: "classifier".to_owned(),
        schedule: schedule_name.to_owned(),
        optimizer: cfg.optimizer.name().to_owned(),
        seed: cfg.seed,
        total_samples,
        batch_size: cfg.batch_size as u64,
        epochs: cfg.epochs as u64,
        lr: cfg.lr,
        dtype: cfg.dtype,
        backend: rex_tensor::backend::kind().to_string(),
        simd_level: rex_tensor::backend::active().simd_level().to_owned(),
        epoch: st.epoch,
        batch_in_epoch: st.batch_in_epoch,
        step: st.step,
        samples_done: st.samples_done,
        epoch_loss: st.epoch_loss,
        epoch_batches: st.epoch_batches,
        last_lr: st.last_lr,
        history: st.history.clone(),
        rng: rng.state(),
        rng_epoch_start: st.rng_epoch_start,
        trace_events,
        model: model
            .params()
            .iter()
            .map(|p| (p.name(), p.value().clone()))
            .collect(),
        buffers: model
            .buffers()
            .iter()
            .map(|(name, cell)| (name.clone(), cell.borrow().clone()))
            .collect(),
        optim: opt.export_state(),
    }
}

/// Rounds non-trainable model state (batch-norm running statistics) to
/// the storage dtype in place. Pure per-element bit functions: identical
/// at every backend and thread count.
fn round_buffers(dtype: DType, model: &dyn Module) {
    for (_, cell) in model.buffers() {
        dtype.round_slice(cell.borrow_mut().data_mut());
    }
}

/// Names the first parameter whose gradient holds a non-finite value.
fn offending_grad(params: &[Param]) -> String {
    for p in params {
        if p.grad().data().iter().any(|v| !v.is_finite()) {
            return format!("grad:{}", p.name());
        }
    }
    "grad".to_owned()
}

/// Test-set classification error (%) in eval mode.
///
/// # Errors
///
/// Propagates model forward errors.
pub fn evaluate_classifier(
    model: &dyn Module,
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
) -> Result<f64, TensorError> {
    let mut predictions = Vec::with_capacity(labels.len());
    for batch in batches(images, labels, batch_size, None) {
        let mut g = Graph::new(false);
        let x = g.constant(batch.images);
        let logits = model.forward(&mut g, x)?;
        predictions.extend(g.value(logits).argmax_rows()?);
    }
    Ok(rex_eval::stats::error_rate(&predictions, labels))
}

/// Mean test cross-entropy in eval mode (validation feedback for plateau
/// schedules).
///
/// # Errors
///
/// Propagates model forward errors.
pub fn classification_loss(
    model: &dyn Module,
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
) -> Result<f64, TensorError> {
    let mut total = 0.0f64;
    let mut count = 0usize;
    for batch in batches(images, labels, batch_size, None) {
        let mut g = Graph::new(false);
        let x = g.constant(batch.images);
        let logits = model.forward(&mut g, x)?;
        let loss = g.cross_entropy(logits, &batch.labels)?;
        total += g.value(loss).item() as f64 * batch.labels.len() as f64;
        count += batch.labels.len();
    }
    Ok(total / count.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_data::images::synth_cifar10;
    use rex_nn::Mlp;

    fn flatten_images(t: &Tensor) -> Tensor {
        let n = t.shape()[0];
        let d: usize = t.shape()[1..].iter().product();
        t.reshape(&[n, d]).unwrap()
    }

    #[test]
    fn training_beats_chance_on_synthetic_data() {
        let data = synth_cifar10(8, 4, 0);
        let mut rng = Prng::new(1);
        let model = Mlp::new("m", &[3 * 12 * 12, 32, 10], &mut rng);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 10,
            batch_size: 16,
            lr: 0.05,
            optimizer: OptimizerKind::sgdm(),
            schedule: ScheduleSpec::Rex,
            augment: false,
            grad_clip: None,
            seed: 2,
            dtype: DType::F32,
            ft: FtConfig::default(),
        });
        let result = trainer
            .train_classifier(
                &model,
                &flatten_images(&data.train_images),
                &data.train_labels,
                &flatten_images(&data.test_images),
                &data.test_labels,
            )
            .unwrap();
        // chance is 90% error on 10 classes
        assert!(
            result.final_metric < 85.0,
            "error {} not better than chance",
            result.final_metric
        );
        assert_eq!(result.history.len(), 10);
        // training loss should drop over the run
        assert!(result.history.last().unwrap().train_loss < result.history[0].train_loss);
    }

    #[test]
    fn schedule_decays_lr_within_budget() {
        let data = synth_cifar10(4, 2, 3);
        let mut rng = Prng::new(4);
        let model = Mlp::new("m", &[3 * 12 * 12, 8, 10], &mut rng);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 4,
            batch_size: 20,
            lr: 0.1,
            optimizer: OptimizerKind::sgdm(),
            schedule: ScheduleSpec::Linear,
            augment: false,
            grad_clip: None,
            seed: 5,
            dtype: DType::F32,
            ft: FtConfig::default(),
        });
        let result = trainer
            .train_classifier(
                &model,
                &flatten_images(&data.train_images),
                &data.train_labels,
                &flatten_images(&data.test_images),
                &data.test_labels,
            )
            .unwrap();
        // the last epoch's final LR must be far below the initial LR:
        // the linear schedule decays over the budget, not the max epochs
        let last_lr = result.history.last().unwrap().lr;
        assert!(last_lr < 0.03, "linear schedule did not decay: {last_lr}");
    }

    #[test]
    fn plateau_schedule_triggers_validation_passes() {
        let data = synth_cifar10(4, 2, 6);
        let mut rng = Prng::new(7);
        let model = Mlp::new("m", &[3 * 12 * 12, 8, 10], &mut rng);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 3,
            batch_size: 20,
            lr: 0.05,
            optimizer: OptimizerKind::adam(),
            schedule: ScheduleSpec::DecayOnPlateau(1),
            augment: false,
            grad_clip: None,
            seed: 8,
            dtype: DType::F32,
            ft: FtConfig::default(),
        });
        let result = trainer
            .train_classifier(
                &model,
                &flatten_images(&data.train_images),
                &data.train_labels,
                &flatten_images(&data.test_images),
                &data.test_labels,
            )
            .unwrap();
        assert!(result.history.iter().all(|e| e.val_loss.is_some()));

        // non-plateau schedules skip the validation pass
        let mut trainer2 = Trainer::new(TrainConfig {
            epochs: 1,
            batch_size: 20,
            lr: 0.05,
            optimizer: OptimizerKind::adam(),
            schedule: ScheduleSpec::Cosine,
            augment: false,
            grad_clip: None,
            seed: 8,
            dtype: DType::F32,
            ft: FtConfig::default(),
        });
        let r2 = trainer2
            .train_classifier(
                &model,
                &flatten_images(&data.train_images),
                &data.train_labels,
                &flatten_images(&data.test_images),
                &data.test_labels,
            )
            .unwrap();
        assert!(r2.history.iter().all(|e| e.val_loss.is_none()));
    }

    #[test]
    fn deterministic_given_seed() {
        let data = synth_cifar10(4, 2, 9);
        let run = || {
            let mut rng = Prng::new(10);
            let model = Mlp::new("m", &[3 * 12 * 12, 8, 10], &mut rng);
            let mut trainer = Trainer::new(TrainConfig {
                epochs: 2,
                batch_size: 20,
                lr: 0.05,
                optimizer: OptimizerKind::sgdm(),
                schedule: ScheduleSpec::Rex,
                augment: true,
                grad_clip: None,
                seed: 11,
                dtype: DType::F32,
                ft: FtConfig::default(),
            });
            trainer
                .train_classifier(
                    &model,
                    &flatten_images(&data.train_images),
                    &data.train_labels,
                    &flatten_images(&data.test_images),
                    &data.test_labels,
                )
                .unwrap()
                .final_metric
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn partial_final_batch_advances_budget_by_its_true_size() {
        use rex_telemetry::MemorySink;

        // 10 samples, batch 4 → batches of 4, 4, 2. Sample-exact accounting
        // must place the three steps of a 1-epoch linear run at progress
        // 0/10, 4/10, 8/10 (LR factors 1.0, 0.6, 0.2); the old per-step
        // accounting would have used 0/3, 1/3, 2/3.
        let data = synth_cifar10(1, 1, 12);
        let mut rng = Prng::new(13);
        let model = Mlp::new("m", &[3 * 12 * 12, 8, 10], &mut rng);
        let sink = MemorySink::unbounded();
        let handle = sink.handle();
        let mut rec = Recorder::new(Box::new(sink));
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 1,
            batch_size: 4,
            lr: 0.1,
            optimizer: OptimizerKind::sgdm(),
            schedule: ScheduleSpec::Linear,
            augment: false,
            grad_clip: None,
            seed: 14,
            dtype: DType::F32,
            ft: FtConfig::default(),
        });
        trainer
            .train_classifier_traced(
                &model,
                &flatten_images(&data.train_images),
                &data.train_labels,
                &flatten_images(&data.test_images),
                &data.test_labels,
                &mut rec,
            )
            .unwrap();
        let steps = handle.steps();
        assert_eq!(steps.len(), 3);
        let lrs: Vec<f64> = steps.iter().map(|r| r.lr).collect();
        for (got, want) in lrs.iter().zip([0.1, 0.06, 0.02]) {
            assert!((got - want).abs() < 1e-7, "lrs {lrs:?}");
        }
    }

    #[test]
    fn traced_run_emits_one_step_record_per_optimizer_step() {
        use rex_telemetry::MemorySink;

        let data = synth_cifar10(4, 2, 15);
        let mut rng = Prng::new(16);
        let model = Mlp::new("m", &[3 * 12 * 12, 8, 10], &mut rng);
        let sink = MemorySink::unbounded();
        let handle = sink.handle();
        let mut rec = Recorder::new(Box::new(sink));
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 2,
            batch_size: 16,
            lr: 0.05,
            optimizer: OptimizerKind::adam(),
            schedule: ScheduleSpec::Rex,
            augment: false,
            grad_clip: None,
            seed: 17,
            dtype: DType::F32,
            ft: FtConfig::default(),
        });
        let result = trainer
            .train_classifier_traced(
                &model,
                &flatten_images(&data.train_images),
                &data.train_labels,
                &flatten_images(&data.test_images),
                &data.test_labels,
                &mut rec,
            )
            .unwrap();
        let events = handle.events();
        // 40 samples / batch 16 → 3 batches per epoch × 2 epochs
        let steps = handle.steps();
        assert_eq!(steps.len(), 6);
        for (i, r) in steps.iter().enumerate() {
            assert_eq!(r.step, i as u64);
            assert_eq!(r.epoch, i as u64 / 3);
            assert_eq!(r.batch_id, i as u64 % 3);
            assert!(r.lr > 0.0 && r.lr <= 0.05 + 1e-9);
            assert!(r.loss.is_finite());
            assert!(r.grad_norm > 0.0, "grad_norm not populated: {r:?}");
            assert!(r.param_norm > 0.0, "param_norm not populated: {r:?}");
        }
        // structural events frame the run
        assert_eq!(events.first().unwrap().kind(), "run_start");
        assert_eq!(events.last().unwrap().kind(), "run_end");
        match events.last().unwrap() {
            Event::RunEnd { metric } => assert_eq!(*metric, result.final_metric),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            events.iter().filter(|e| e.kind() == "epoch").count(),
            2,
            "one loader epoch event per epoch"
        );

        // tracing must not perturb the trajectory: an untraced same-seed
        // run reaches the identical final metric
        let mut rng2 = Prng::new(16);
        let model2 = Mlp::new("m", &[3 * 12 * 12, 8, 10], &mut rng2);
        let mut trainer2 = Trainer::new(TrainConfig {
            epochs: 2,
            batch_size: 16,
            lr: 0.05,
            optimizer: OptimizerKind::adam(),
            schedule: ScheduleSpec::Rex,
            augment: false,
            grad_clip: None,
            seed: 17,
            dtype: DType::F32,
            ft: FtConfig::default(),
        });
        let r2 = trainer2
            .train_classifier(
                &model2,
                &flatten_images(&data.train_images),
                &data.train_labels,
                &flatten_images(&data.test_images),
                &data.test_labels,
            )
            .unwrap();
        assert_eq!(r2.final_metric, result.final_metric);
    }

    #[test]
    fn optimizer_kind_names_and_defaults() {
        assert_eq!(OptimizerKind::sgdm().name(), "SGDM");
        assert_eq!(OptimizerKind::adam().name(), "Adam");
        assert_eq!(OptimizerKind::adamw().name(), "AdamW");
        assert!(OptimizerKind::sgdm().default_lr() > OptimizerKind::adam().default_lr());
    }
}
