//! # rex-serve — budgeted training as a service
//!
//! A zero-dependency HTTP/1.1 front door over the REX training stack:
//! `rexctl serve` (or the `rexd` binary) turns the single-run CLI into a
//! long-lived daemon that accepts training jobs as JSON, executes them on
//! a bounded worker pool, and exposes status, live JSONL trace streams,
//! and Prometheus-style metrics — all on `std::net`, no frameworks.
//!
//! ## Contract
//!
//! * **Same cell, same bytes.** An HTTP job runs through
//!   [`rex_train::settings::SettingSpec::run_ft`], the exact code path
//!   `rexctl train` uses, so a job's `trace.jsonl` is byte-identical to
//!   the trace of the equivalent CLI invocation.
//! * **Explicit backpressure.** Admission is a bounded FIFO queue
//!   ([`queue::BoundedQueue`]); a full queue answers `429` with
//!   `Retry-After` instead of buffering unboundedly.
//! * **Evict and resume.** Job state is mirrored crash-consistently to
//!   disk; a killed server restarted on the same data dir re-enqueues
//!   every non-terminal job, which resumes from its last `REXSTATE1`
//!   checkpoint and finishes with the same trace bytes an uninterrupted
//!   run produces.
//! * **Supervised recovery.** A transiently failed job (checkpoint or
//!   trace I/O, a poisoned snapshot, a watchdog-detected stall) is
//!   re-queued with bounded exponential full-jitter backoff up to its
//!   `max_retries`; retry counters and the next-eligible time survive
//!   restarts via the manifest. SIGTERM drains gracefully: submissions
//!   get `503` + `Retry-After`, running jobs checkpoint at the next
//!   step boundary and park `Queued` on disk, and the process exits 0.
//!
//! ## Routes
//!
//! | Route | Meaning |
//! |---|---|
//! | `GET /healthz` | liveness (`200` even while draining) |
//! | `GET /readyz` | admission readiness: `200`, or `503` + `Retry-After` while draining or stopped |
//! | `POST /v1/jobs` | submit a job (`202`), hit backpressure (`429`), or race a drain (`503`) |
//! | `GET /v1/jobs` | list all jobs, one JSON object per line |
//! | `GET /v1/jobs/:id` | one job's record (state, metric, `resumes`, `retries`, `retry_after_ms`) |
//! | `DELETE /v1/jobs/:id` | cancel (queued: immediate; running: cooperative; terminal: idempotent `200`) |
//! | `GET /v1/jobs/:id/trace` | chunked live JSONL trace stream |
//! | `GET /metrics` | Prometheus-style text format |

#![warn(missing_docs)]

pub mod cli;
pub mod client;
pub mod http;
pub mod jobs;
pub mod queue;
pub mod server;

pub use jobs::{JobCounts, JobRecord, JobSpec, JobState, Ledger};
pub use queue::{BoundedQueue, QueueFull};
pub use server::{ServeConfig, Server};
