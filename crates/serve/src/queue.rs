//! A bounded FIFO work queue with explicit backpressure.
//!
//! The admission contract behind `POST /v1/jobs`: [`BoundedQueue::try_push`]
//! never blocks — a full queue is surfaced to the submitter as an error
//! (HTTP 429 + `Retry-After`) instead of an unbounded in-memory backlog.
//! Workers block in [`BoundedQueue::pop`] until work or shutdown. Every
//! admitted item carries a monotonically increasing ticket, and pops hand
//! out items in strict ticket order, so admission order *is* execution
//! order regardless of how many workers drain the queue.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// `try_push` on a full queue.
#[derive(Debug, PartialEq, Eq)]
pub struct QueueFull;

struct Inner<T> {
    items: VecDeque<(u64, T)>,
    next_ticket: u64,
    shutdown: bool,
}

/// A bounded multi-producer multi-consumer FIFO queue.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    cv: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` items at a time (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                next_ticket: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued (admitted, not yet popped).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admits `item` if there is room, returning its ticket.
    ///
    /// # Errors
    ///
    /// [`QueueFull`] when the queue is at capacity (or shut down) —
    /// the caller owes the submitter a backpressure signal.
    pub fn try_push(&self, item: T) -> Result<u64, QueueFull> {
        let mut inner = self.inner.lock().unwrap();
        if inner.shutdown || inner.items.len() >= self.capacity {
            return Err(QueueFull);
        }
        let ticket = inner.next_ticket;
        inner.next_ticket += 1;
        inner.items.push_back((ticket, item));
        drop(inner);
        self.cv.notify_one();
        Ok(ticket)
    }

    /// Admits `item` even past the capacity bound. Recovery only: jobs
    /// found non-terminal on disk at startup must all re-enter the queue,
    /// however many there are — dropping one would lose it forever.
    pub fn push_unbounded(&self, item: T) -> u64 {
        let mut inner = self.inner.lock().unwrap();
        let ticket = inner.next_ticket;
        inner.next_ticket += 1;
        inner.items.push_back((ticket, item));
        drop(inner);
        self.cv.notify_one();
        ticket
    }

    /// Blocks until an item is available (returning the oldest ticket) or
    /// the queue is shut down and drained (`None`).
    pub fn pop(&self) -> Option<(u64, T)> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(pair) = inner.items.pop_front() {
                return Some(pair);
            }
            if inner.shutdown {
                return None;
            }
            inner = self.cv.wait(inner).unwrap();
        }
    }

    /// Removes and returns the first queued item matching `pred` (cancel
    /// of a still-queued job). The freed slot is immediately reusable.
    pub fn remove<F: FnMut(&T) -> bool>(&self, mut pred: F) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        let idx = inner.items.iter().position(|(_, item)| pred(item))?;
        inner.items.remove(idx).map(|(_, item)| item)
    }

    /// Marks the queue shut down: pushes fail, pops drain the backlog and
    /// then return `None`.
    pub fn shutdown(&self) {
        self.inner.lock().unwrap().shutdown = true;
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_capacity() {
        let q = BoundedQueue::new(3);
        assert_eq!(q.try_push('a').unwrap(), 0);
        assert_eq!(q.try_push('b').unwrap(), 1);
        assert_eq!(q.pop(), Some((0, 'a')));
        assert_eq!(q.pop(), Some((1, 'b')));
    }

    #[test]
    fn full_queue_rejects_then_recovers() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(QueueFull));
        assert_eq!(q.len(), 2);
        q.pop().unwrap();
        q.try_push(3).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn remove_frees_a_slot() {
        let q = BoundedQueue::new(2);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        assert_eq!(q.remove(|item| *item == "a"), Some("a"));
        q.try_push("c").unwrap();
        assert_eq!(q.pop().map(|(_, v)| v), Some("b"));
        assert_eq!(q.pop().map(|(_, v)| v), Some("c"));
    }

    #[test]
    fn shutdown_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.shutdown();
        assert_eq!(q.try_push(2), Err(QueueFull));
        assert_eq!(q.pop(), Some((0, 1)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_unbounded_ignores_capacity() {
        let q = BoundedQueue::new(1);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2), Err(QueueFull));
        q.push_unbounded(2);
        assert_eq!(q.len(), 2);
    }
}
