//! Job specs, the durable job ledger, and the job executor.
//!
//! A job is one budgeted training cell — the same cell `rexctl train`
//! runs, specified as a flat JSON object and executed through
//! [`rex_train::settings::SettingSpec::run_ft`]. The ledger keeps every
//! job's record in memory and mirrors it to `jobs/<id>/job.json`
//! (crash-consistently, via `rex_faults::atomic_write`), so a restarted
//! server can rebuild its world from disk: terminal jobs stay queryable,
//! non-terminal jobs re-enter the queue and resume from their last
//! `REXSTATE1` checkpoint.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rex_core::ScheduleSpec;
use rex_telemetry::json::{self, Value};
use rex_telemetry::{FanoutSink, JsonlSink, MetricsRegistry, Recorder, RegistrySink};
use rex_tensor::DType;
use rex_train::settings::load_setting;
use rex_train::{FtConfig, GuardPolicy, OptimizerKind, TrainError, TrainState};

/// Retry budget for jobs that do not specify `max_retries` (and for
/// manifests written before the field existed).
pub const DEFAULT_MAX_RETRIES: u64 = 3;

/// Parses an optimizer family name (the `rexctl` vocabulary).
///
/// # Errors
///
/// Names the unknown optimizer.
pub fn parse_optimizer(name: &str) -> Result<OptimizerKind, String> {
    match name.to_ascii_lowercase().as_str() {
        "sgdm" | "sgd" => Ok(OptimizerKind::sgdm()),
        "adam" => Ok(OptimizerKind::adam()),
        "adamw" => Ok(OptimizerKind::adamw()),
        other => Err(format!("unknown optimizer {other:?}")),
    }
}

/// A validated training-job specification, as submitted over HTTP.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Setting name from [`rex_train::settings::SETTING_NAMES`].
    pub setting: String,
    /// Budget as a percentage of the setting's maximum epochs.
    pub budget: u32,
    /// Schedule name (the `--schedule` vocabulary), parsed lazily so the
    /// spec round-trips through JSON byte-exactly.
    pub schedule: String,
    /// Optimizer family name.
    pub optimizer: String,
    /// Run seed.
    pub seed: u64,
    /// Initial LR; `None` means the setting's default for the optimizer.
    pub lr: Option<f32>,
    /// Checkpoint cadence in steps; 0 disables checkpointing (the job
    /// cannot be resumed after an eviction).
    pub checkpoint_every: u64,
    /// Parameter storage precision (`"f32"` | `"f16"` | `"bf16"`);
    /// defaults to `"f32"`, the legacy bit-exact path.
    pub dtype: String,
    /// How many times a *transient* failure (checkpoint/trace I/O, hung
    /// run caught by the watchdog) may be retried before the job is
    /// marked failed for good.
    pub max_retries: u64,
}

impl JobSpec {
    /// Parses and validates a flat-JSON job body.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending field.
    pub fn parse(
        body: &str,
        default_checkpoint_every: u64,
        default_max_retries: u64,
    ) -> Result<JobSpec, String> {
        let obj = json::parse_object(body)?;
        let known = [
            "setting",
            "budget",
            "schedule",
            "optimizer",
            "seed",
            "lr",
            "checkpoint_every",
            "dtype",
            "max_retries",
        ];
        if let Some(k) = obj.keys().find(|k| !known.contains(&k.as_str())) {
            return Err(format!("unknown field {k:?}"));
        }
        let str_field = |key: &str, default: &str| -> Result<String, String> {
            match obj.get(key) {
                None => Ok(default.to_owned()),
                Some(Value::Str(s)) => Ok(s.clone()),
                Some(_) => Err(format!("field {key:?} must be a string")),
            }
        };
        let spec = JobSpec {
            setting: match obj.get("setting") {
                Some(Value::Str(s)) => s.clone(),
                Some(_) => return Err("field \"setting\" must be a string".to_owned()),
                None => return Err("missing required field \"setting\"".to_owned()),
            },
            budget: match obj.get("budget") {
                None => return Err("missing required field \"budget\"".to_owned()),
                Some(v) => u32::try_from(
                    v.as_u64()
                        .ok_or_else(|| "field \"budget\" must be an integer".to_owned())?,
                )
                .map_err(|_| "field \"budget\" out of range".to_owned())?,
            },
            schedule: str_field("schedule", "rex")?,
            optimizer: str_field("optimizer", "sgdm")?,
            seed: match obj.get("seed") {
                None => 0,
                Some(v) => v
                    .as_u64()
                    .ok_or_else(|| "field \"seed\" must be a non-negative integer".to_owned())?,
            },
            lr: match obj.get("lr") {
                None | Some(Value::Null) => None,
                Some(v) => Some(
                    v.as_f64()
                        .filter(|f| f.is_finite() && *f > 0.0)
                        .ok_or_else(|| "field \"lr\" must be a positive number".to_owned())?
                        as f32,
                ),
            },
            checkpoint_every: match obj.get("checkpoint_every") {
                None => default_checkpoint_every,
                Some(v) => v.as_u64().ok_or_else(|| {
                    "field \"checkpoint_every\" must be a non-negative integer".to_owned()
                })?,
            },
            dtype: str_field("dtype", "f32")?,
            max_retries: match obj.get("max_retries") {
                None => default_max_retries,
                Some(v) => v.as_u64().ok_or_else(|| {
                    "field \"max_retries\" must be a non-negative integer".to_owned()
                })?,
            },
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Checks every field against the vocabularies it will be run with.
    ///
    /// # Errors
    ///
    /// A message naming the invalid field.
    pub fn validate(&self) -> Result<(), String> {
        load_setting(&self.setting, 0)?;
        self.parsed_schedule()?;
        parse_optimizer(&self.optimizer)?;
        if self.budget == 0 || self.budget > 100 {
            return Err(format!("budget must be in 1..=100, got {}", self.budget));
        }
        self.parsed_dtype()?;
        Ok(())
    }

    /// The storage dtype, parsed and restricted to trainable precisions.
    ///
    /// # Errors
    ///
    /// A message naming the invalid value.
    pub fn parsed_dtype(&self) -> Result<DType, String> {
        match DType::parse(&self.dtype) {
            Some(d) if d.trainable() => Ok(d),
            Some(d) => Err(format!("dtype {d} is not trainable (use f32 | f16 | bf16)")),
            None => Err(format!(
                "unknown dtype {:?} (expected f32 | f16 | bf16)",
                self.dtype
            )),
        }
    }

    /// The schedule, parsed.
    ///
    /// # Errors
    ///
    /// The schedule grammar's own message.
    pub fn parsed_schedule(&self) -> Result<ScheduleSpec, String> {
        self.schedule
            .parse()
            .map_err(|e: rex_core::ParseScheduleError| e.to_string())
    }

    /// Serializes the spec's fields (callers wrap them into an object).
    fn json_fields(&self) -> String {
        format!(
            "\"setting\":\"{}\",\"budget\":{},\"schedule\":\"{}\",\"optimizer\":\"{}\",\
             \"seed\":{},\"lr\":{},\"checkpoint_every\":{},\"dtype\":\"{}\",\"max_retries\":{}",
            json::escape(&self.setting),
            self.budget,
            json::escape(&self.schedule),
            json::escape(&self.optimizer),
            self.seed,
            self.lr
                .map_or("null".to_owned(), |lr| json::fmt_f64(f64::from(lr))),
            self.checkpoint_every,
            json::escape(&self.dtype),
            self.max_retries,
        )
    }
}

/// The lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is training it.
    Running,
    /// Finished; the metric is final.
    Done,
    /// Errored out; see the record's `error`.
    Failed,
    /// Canceled before completion.
    Canceled,
}

impl JobState {
    /// Wire name.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Canceled => "canceled",
        }
    }

    /// Whether the job can never change state again.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed | JobState::Canceled)
    }

    fn parse(name: &str) -> Result<JobState, String> {
        Ok(match name {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "done" => JobState::Done,
            "failed" => JobState::Failed,
            "canceled" => JobState::Canceled,
            other => return Err(format!("unknown job state {other:?}")),
        })
    }
}

/// One job's full record.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Job id (`job-000001`, …).
    pub id: String,
    /// The spec it was submitted with.
    pub spec: JobSpec,
    /// Current lifecycle state.
    pub state: JobState,
    /// Final metric, once `Done`.
    pub metric: Option<f64>,
    /// Failure message, once `Failed`.
    pub error: Option<String>,
    /// Times this job re-entered the queue after a server restart.
    pub resumes: u64,
    /// Times this job was re-queued after a transient failure. Persisted,
    /// so the retry budget survives daemon restarts.
    pub retries: u64,
    /// Backoff pause (milliseconds) before the next retry attempt, when
    /// one is scheduled; cleared when the attempt starts.
    pub retry_after_ms: Option<u64>,
    /// Id of the HTTP request that submitted the job (`c<N>-r<M>`), for
    /// correlating manifests with access-log lines. Deliberately kept out
    /// of the job's trace: traces must stay byte-identical to CLI runs.
    pub request_id: Option<String>,
    /// Cooperative cancel flag, shared with the trainer's `stop_flag`.
    /// Set by explicit cancels, the watchdog, and graceful drain alike —
    /// the companion flags below say which it was.
    pub cancel: Arc<AtomicBool>,
    /// Set only by `DELETE /v1/jobs/:id`: a halt with this flag up is a
    /// user cancel, never a drain hand-back or a watchdog retry.
    pub user_cancel: Arc<AtomicBool>,
    /// Set by the watchdog when the job stopped making step progress; a
    /// halt with this flag up is classified as a transient failure.
    pub watchdog_fired: Arc<AtomicBool>,
}

impl JobRecord {
    /// Serializes the record as one flat JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"id\":\"{}\",{},\"state\":\"{}\",\"metric\":{},\"error\":{},\"resumes\":{},\
             \"retries\":{},\"retry_after_ms\":{},\"request_id\":{}}}",
            json::escape(&self.id),
            self.spec.json_fields(),
            self.state.name(),
            self.metric.map_or("null".to_owned(), json::fmt_f64),
            self.error
                .as_deref()
                .map_or("null".to_owned(), |e| format!("\"{}\"", json::escape(e))),
            self.resumes,
            self.retries,
            self.retry_after_ms
                .map_or("null".to_owned(), |ms| ms.to_string()),
            self.request_id
                .as_deref()
                .map_or("null".to_owned(), |r| format!("\"{}\"", json::escape(r))),
        )
    }

    fn from_json(text: &str) -> Result<JobRecord, String> {
        let obj = json::parse_object(text)?;
        let get_str = |key: &str| -> Result<String, String> {
            obj.get(key)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("job record missing string field {key:?}"))
        };
        let spec = JobSpec {
            setting: get_str("setting")?,
            budget: obj
                .get("budget")
                .and_then(Value::as_u64)
                .and_then(|v| u32::try_from(v).ok())
                .ok_or("job record missing budget")?,
            schedule: get_str("schedule")?,
            optimizer: get_str("optimizer")?,
            seed: obj
                .get("seed")
                .and_then(Value::as_u64)
                .ok_or("job record missing seed")?,
            lr: match obj.get("lr") {
                None | Some(Value::Null) => None,
                Some(v) => Some(v.as_f64().ok_or("job record lr not a number")? as f32),
            },
            checkpoint_every: obj
                .get("checkpoint_every")
                .and_then(Value::as_u64)
                .ok_or("job record missing checkpoint_every")?,
            // manifests written before the dtype field existed are f32
            dtype: match obj.get("dtype") {
                None => "f32".to_owned(),
                Some(v) => v
                    .as_str()
                    .map(str::to_owned)
                    .ok_or("job record dtype not a string")?,
            },
            // manifests written before retry supervision existed get the
            // default budget
            max_retries: obj
                .get("max_retries")
                .and_then(Value::as_u64)
                .unwrap_or(DEFAULT_MAX_RETRIES),
        };
        Ok(JobRecord {
            id: get_str("id")?,
            spec,
            state: JobState::parse(&get_str("state")?)?,
            metric: match obj.get("metric") {
                None | Some(Value::Null) => None,
                Some(v) => v.as_f64().filter(|m| m.is_finite()),
            },
            error: match obj.get("error") {
                None | Some(Value::Null) => None,
                Some(v) => v.as_str().map(str::to_owned),
            },
            resumes: obj.get("resumes").and_then(Value::as_u64).unwrap_or(0),
            retries: obj.get("retries").and_then(Value::as_u64).unwrap_or(0),
            retry_after_ms: obj.get("retry_after_ms").and_then(Value::as_u64),
            // manifests written before request ids existed have none
            request_id: match obj.get("request_id") {
                None | Some(Value::Null) => None,
                Some(v) => v.as_str().map(str::to_owned),
            },
            cancel: Arc::new(AtomicBool::new(false)),
            user_cancel: Arc::new(AtomicBool::new(false)),
            watchdog_fired: Arc::new(AtomicBool::new(false)),
        })
    }
}

/// Per-state job counts, for `/metrics` and tests.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct JobCounts {
    /// Jobs in `Queued`.
    pub queued: u64,
    /// Jobs in `Running`.
    pub running: u64,
    /// Jobs in `Done`.
    pub done: u64,
    /// Jobs in `Failed`.
    pub failed: u64,
    /// Jobs in `Canceled`.
    pub canceled: u64,
}

/// The durable job ledger: in-memory records mirrored to
/// `<data_dir>/jobs/<id>/job.json`.
pub struct Ledger {
    jobs: Mutex<BTreeMap<String, JobRecord>>,
    data_dir: PathBuf,
}

impl Ledger {
    /// Opens (or creates) the ledger under `data_dir`, loading every job
    /// record found on disk. Jobs recorded as `Running` by a previous
    /// server life are flipped back to `Queued` (their next run resumes
    /// from the checkpoint).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; corrupt `job.json` files are
    /// reported, not skipped — silently dropping a job would violate the
    /// no-lost-jobs contract.
    pub fn open(data_dir: &Path) -> std::io::Result<Ledger> {
        let jobs_root = data_dir.join("jobs");
        std::fs::create_dir_all(&jobs_root)?;
        let mut jobs = BTreeMap::new();
        for entry in std::fs::read_dir(&jobs_root)? {
            let dir = entry?.path();
            let manifest = dir.join("job.json");
            if !manifest.is_file() {
                continue;
            }
            let text = std::fs::read_to_string(&manifest)?;
            let mut record = JobRecord::from_json(&text).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("corrupt job manifest {}: {e}", manifest.display()),
                )
            })?;
            if record.state == JobState::Running {
                record.state = JobState::Queued;
                record.resumes += 1;
            }
            jobs.insert(record.id.clone(), record);
        }
        Ok(Ledger {
            jobs: Mutex::new(jobs),
            data_dir: data_dir.to_owned(),
        })
    }

    /// Ids of non-terminal jobs, oldest first — the startup re-enqueue
    /// list. Persists their (possibly reset) state first.
    ///
    /// # Errors
    ///
    /// Propagates manifest-write errors.
    pub fn recoverable(&self) -> std::io::Result<Vec<String>> {
        let jobs = self.jobs.lock().unwrap();
        let mut ids = Vec::new();
        for (id, record) in jobs.iter() {
            if !record.state.is_terminal() {
                self.persist(record)?;
                ids.push(id.clone());
            }
        }
        Ok(ids)
    }

    /// Allocates the next job id and registers `spec` as `Queued`,
    /// without touching disk yet (see [`Ledger::commit`] /
    /// [`Ledger::discard`]). `request_id` ties the manifest back to the
    /// submitting HTTP request, when there was one.
    pub fn create(&self, spec: JobSpec, request_id: Option<String>) -> JobRecord {
        let mut jobs = self.jobs.lock().unwrap();
        let next = jobs
            .keys()
            .filter_map(|id| id.strip_prefix("job-")?.parse::<u64>().ok())
            .max()
            .unwrap_or(0)
            + 1;
        let record = JobRecord {
            id: format!("job-{next:06}"),
            spec,
            state: JobState::Queued,
            metric: None,
            error: None,
            resumes: 0,
            retries: 0,
            retry_after_ms: None,
            request_id,
            cancel: Arc::new(AtomicBool::new(false)),
            user_cancel: Arc::new(AtomicBool::new(false)),
            watchdog_fired: Arc::new(AtomicBool::new(false)),
        };
        jobs.insert(record.id.clone(), record.clone());
        record
    }

    /// Persists a freshly created record — call once it is safely in the
    /// queue.
    ///
    /// # Errors
    ///
    /// Propagates manifest-write errors.
    pub fn commit(&self, record: &JobRecord) -> std::io::Result<()> {
        self.persist(record)
    }

    /// Forgets a record that never made it into the queue (admission
    /// rejected): the id is not reused, the map entry and any stray dir
    /// are dropped.
    pub fn discard(&self, id: &str) {
        self.jobs.lock().unwrap().remove(id);
        let _ = std::fs::remove_dir_all(self.job_dir(id));
    }

    /// A point-in-time copy of one record.
    pub fn get(&self, id: &str) -> Option<JobRecord> {
        self.jobs.lock().unwrap().get(id).cloned()
    }

    /// Point-in-time copies of every record, id order.
    pub fn list(&self) -> Vec<JobRecord> {
        self.jobs.lock().unwrap().values().cloned().collect()
    }

    /// Per-state counts.
    pub fn counts(&self) -> JobCounts {
        let jobs = self.jobs.lock().unwrap();
        let mut c = JobCounts::default();
        for record in jobs.values() {
            match record.state {
                JobState::Queued => c.queued += 1,
                JobState::Running => c.running += 1,
                JobState::Done => c.done += 1,
                JobState::Failed => c.failed += 1,
                JobState::Canceled => c.canceled += 1,
            }
        }
        c
    }

    /// Transitions `id` to `state` (with optional metric/error) and
    /// persists the record. Returns the updated record.
    ///
    /// # Errors
    ///
    /// Propagates manifest-write errors; unknown ids are a no-op `None`.
    pub fn set_state(
        &self,
        id: &str,
        state: JobState,
        metric: Option<f64>,
        error: Option<String>,
    ) -> std::io::Result<Option<JobRecord>> {
        let mut jobs = self.jobs.lock().unwrap();
        let Some(record) = jobs.get_mut(id) else {
            return Ok(None);
        };
        record.state = state;
        if state == JobState::Running {
            record.retry_after_ms = None;
        }
        if metric.is_some() {
            record.metric = metric;
        }
        if error.is_some() {
            record.error = error;
        }
        let snapshot = record.clone();
        drop(jobs);
        self.persist(&snapshot)?;
        Ok(Some(snapshot))
    }

    /// Books one transient-failure retry: bumps the retry counter, records
    /// the backoff pause, parks the job back in `Queued`, and clears the
    /// halt flags so the next attempt is not stillborn. Persisted, so the
    /// retry budget and pending backoff survive a daemon restart.
    ///
    /// # Errors
    ///
    /// Propagates manifest-write errors.
    pub fn record_retry(&self, id: &str, backoff_ms: u64) -> std::io::Result<Option<JobRecord>> {
        let mut jobs = self.jobs.lock().unwrap();
        let Some(record) = jobs.get_mut(id) else {
            return Ok(None);
        };
        record.retries += 1;
        record.retry_after_ms = Some(backoff_ms);
        record.state = JobState::Queued;
        record.cancel.store(false, Ordering::Release);
        record.watchdog_fired.store(false, Ordering::Release);
        let snapshot = record.clone();
        drop(jobs);
        self.persist(&snapshot)?;
        Ok(Some(snapshot))
    }

    /// Sets the cancel flag of every non-terminal job (server shutdown).
    pub fn cancel_all(&self) {
        for record in self.jobs.lock().unwrap().values() {
            if !record.state.is_terminal() {
                record.cancel.store(true, Ordering::Release);
            }
        }
    }

    /// Asks every `Running` job to halt at its next step boundary
    /// (graceful drain: the trainer checkpoints and the job goes back to
    /// `Queued`, not `Canceled`). Queued jobs are left untouched.
    pub fn halt_running(&self) {
        for record in self.jobs.lock().unwrap().values() {
            if record.state == JobState::Running {
                record.cancel.store(true, Ordering::Release);
            }
        }
    }

    /// The job's working directory.
    pub fn job_dir(&self, id: &str) -> PathBuf {
        self.data_dir.join("jobs").join(id)
    }

    /// The job's JSONL trace path.
    pub fn trace_path(&self, id: &str) -> PathBuf {
        self.job_dir(id).join("trace.jsonl")
    }

    /// The job's `REXSTATE1` checkpoint path.
    pub fn ckpt_path(&self, id: &str) -> PathBuf {
        self.job_dir(id).join("ckpt.state")
    }

    fn persist(&self, record: &JobRecord) -> std::io::Result<()> {
        let dir = self.job_dir(&record.id);
        std::fs::create_dir_all(&dir)?;
        let mut text = record.to_json();
        text.push('\n');
        rex_faults::atomic_write("job", &dir.join("job.json"), text.as_bytes())
    }
}

/// How one job execution ended.
#[derive(Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// Trained to completion.
    Done,
    /// Stopped by its cancel flag.
    Canceled,
    /// Errored permanently (bad config, non-finite loss, retries spent).
    Failed,
    /// Failed transiently (checkpoint/trace I/O, watchdog halt); the
    /// supervisor decides whether to re-queue it with backoff.
    Retry(String),
    /// Halted by a graceful drain; parked back in `Queued` with a fresh
    /// checkpoint so the next daemon life resumes it.
    Drained,
}

/// Deterministic full-jitter exponential backoff: the ceiling doubles per
/// attempt from `BASE_MS` up to `CAP_MS`, and the pause is drawn below the
/// ceiling by a splitmix64 hash of (job id, attempt) — reproducible across
/// runs, uncorrelated across jobs.
pub fn backoff_ms(id: &str, attempt: u64) -> u64 {
    const BASE_MS: u64 = 50;
    const CAP_MS: u64 = 5_000;
    let ceiling = (BASE_MS << attempt.saturating_sub(1).min(8)).min(CAP_MS);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in id.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut z = h
        .wrapping_add(attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    1 + z % ceiling
}

/// Whether a training failure is worth retrying: checkpoint/trace I/O can
/// heal (full disk, fault injection), while config errors, incompatible
/// resumes, and numeric blowups will fail identically every attempt.
fn is_transient(e: &TrainError) -> bool {
    matches!(e, TrainError::Checkpoint { .. })
}

/// Supervision context for one job execution, threaded in by the worker:
/// the server-wide drain flag and the heartbeat cell the watchdog reads.
/// `RunCtx::default()` (no drain, no heartbeat) suits direct callers.
#[derive(Default)]
pub struct RunCtx {
    /// The server's drain flag; a halt while it is up parks the job back
    /// in `Queued` instead of `Canceled`.
    pub draining: Option<Arc<AtomicBool>>,
    /// Last completed step, published by the trainer every step.
    pub heartbeat: Option<Arc<AtomicU64>>,
}

/// Executes job `id` to a terminal state or a supervised hand-back:
/// builds the trace sink (resuming both trace and training state from the
/// job's checkpoint when one exists — a poisoned checkpoint is
/// quarantined and the job restarts from scratch), runs the cell through
/// the shared setting runner, and persists the outcome.
///
/// # Errors
///
/// Only manifest-write failures surface as `Err`; training failures are
/// classified into [`RunOutcome::Failed`] (permanent) or
/// [`RunOutcome::Retry`] (transient), and trace-sink I/O failures come
/// back as `Retry` too.
pub fn run_job(
    ledger: &Ledger,
    registry: &Arc<MetricsRegistry>,
    id: &str,
    ctx: &RunCtx,
) -> std::io::Result<RunOutcome> {
    let Some(record) = ledger.get(id) else {
        return Ok(RunOutcome::Failed);
    };
    // A cancel that raced admission: honor it without spinning up a run.
    if record.cancel.load(Ordering::Acquire) {
        ledger.set_state(id, JobState::Canceled, None, None)?;
        return Ok(RunOutcome::Canceled);
    }
    ledger.set_state(id, JobState::Running, None, None)?;

    let spec = &record.spec;
    let trace_path = ledger.trace_path(id);
    let ckpt_path = ledger.ckpt_path(id);
    let mut resuming = spec.checkpoint_every > 0 && ckpt_path.is_file();

    let jsonl = (|| -> std::io::Result<JsonlSink> {
        if resuming {
            match TrainState::load(&ckpt_path) {
                Ok(state) => return JsonlSink::resume(&trace_path, state.trace_events),
                Err(e) => {
                    // A checkpoint that no longer decodes would fail every
                    // resume forever: quarantine it and start over.
                    let quarantined = ckpt_path.with_extension("state.poisoned");
                    let _ = std::fs::rename(&ckpt_path, &quarantined);
                    eprintln!(
                        "rexd: quarantined poisoned checkpoint {} ({e}); \
                         restarting {id} from scratch",
                        ckpt_path.display()
                    );
                    registry.counter_inc("rex_ckpt_quarantined_total", 1);
                    resuming = false;
                }
            }
        }
        JsonlSink::create(&trace_path)
    })();
    let jsonl = match jsonl {
        Ok(sink) => sink,
        Err(e) => return Ok(RunOutcome::Retry(format!("trace sink: {e}"))),
    };
    let mut rec = Recorder::new(Box::new(FanoutSink::new(vec![
        Box::new(jsonl),
        Box::new(RegistrySink::new(Arc::clone(registry))),
    ])));

    let outcome = (|| -> Result<f64, TrainError> {
        let setting = load_setting(&spec.setting, spec.seed).map_err(TrainError::Config)?;
        let optimizer = parse_optimizer(&spec.optimizer).map_err(TrainError::Config)?;
        let schedule = spec.parsed_schedule().map_err(TrainError::Config)?;
        let lr = spec.lr.unwrap_or_else(|| setting.default_lr(&optimizer));
        let dtype = spec.parsed_dtype().map_err(TrainError::Config)?;
        let ft = FtConfig {
            checkpoint_every: (spec.checkpoint_every > 0).then_some(spec.checkpoint_every),
            checkpoint_path: (spec.checkpoint_every > 0).then(|| ckpt_path.clone()),
            resume_from: resuming.then(|| ckpt_path.clone()),
            guard: GuardPolicy::Off,
            halt_after_step: None,
            stop_flag: Some(Arc::clone(&record.cancel)),
            keep_checkpoints: None,
            // a drain-halted job keeps its progress without trace drift
            checkpoint_on_halt: spec.checkpoint_every > 0,
            heartbeat: ctx.heartbeat.clone(),
        };
        setting.run_ft(
            spec.budget,
            optimizer,
            schedule,
            lr,
            spec.seed,
            dtype,
            ft,
            &mut rec,
        )
    })();
    rec.flush();
    drop(rec);

    // Counters increment BEFORE the manifest flips terminal: the ledger
    // is the synchronization point clients poll, so anyone who observes
    // a terminal state and then scrapes /metrics sees the matching
    // count. (The reverse order has a window where a job reads "done"
    // but is not yet counted.)
    match outcome {
        Ok(metric) => {
            registry.counter_inc("rex_jobs_completed_total", 1);
            ledger.set_state(id, JobState::Done, Some(metric), None)?;
            Ok(RunOutcome::Done)
        }
        Err(TrainError::Halted { .. }) if record.cancel.load(Ordering::Acquire) => {
            // One flag, three meanings — disambiguate in priority order.
            if record.user_cancel.load(Ordering::Acquire) {
                registry.counter_inc("rex_jobs_canceled_total", 1);
                ledger.set_state(id, JobState::Canceled, None, None)?;
                Ok(RunOutcome::Canceled)
            } else if record.watchdog_fired.load(Ordering::Acquire) {
                Ok(RunOutcome::Retry("watchdog: no step progress".to_owned()))
            } else if ctx
                .draining
                .as_ref()
                .is_some_and(|d| d.load(Ordering::Acquire))
            {
                registry.counter_inc("rex_jobs_drained_total", 1);
                ledger.set_state(id, JobState::Queued, None, None)?;
                Ok(RunOutcome::Drained)
            } else {
                registry.counter_inc("rex_jobs_canceled_total", 1);
                ledger.set_state(id, JobState::Canceled, None, None)?;
                Ok(RunOutcome::Canceled)
            }
        }
        Err(e) if is_transient(&e) => Ok(RunOutcome::Retry(e.to_string())),
        Err(e) => {
            registry.counter_inc("rex_jobs_failed_total", 1);
            ledger.set_state(id, JobState::Failed, None, Some(e.to_string()))?;
            Ok(RunOutcome::Failed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rex_ledger_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spec() -> JobSpec {
        JobSpec {
            setting: "digits-mlp".to_owned(),
            budget: 25,
            schedule: "rex".to_owned(),
            optimizer: "sgdm".to_owned(),
            seed: 7,
            lr: None,
            checkpoint_every: 2,
            dtype: "f32".to_owned(),
            max_retries: DEFAULT_MAX_RETRIES,
        }
    }

    #[test]
    fn spec_parses_defaults_and_rejects_garbage() {
        let s = JobSpec::parse(r#"{"setting":"digits-mlp","budget":25}"#, 5, 3).unwrap();
        assert_eq!(s.schedule, "rex");
        assert_eq!(s.optimizer, "sgdm");
        assert_eq!(s.checkpoint_every, 5);
        assert_eq!(s.seed, 0);
        assert_eq!(s.max_retries, 3);
        assert!(s.lr.is_none());

        for bad in [
            "not json",
            "{}",
            r#"{"setting":"warp-drive","budget":10}"#,
            r#"{"setting":"digits-mlp","budget":0}"#,
            r#"{"setting":"digits-mlp","budget":101}"#,
            r#"{"setting":"digits-mlp","budget":10,"schedule":"warp"}"#,
            r#"{"setting":"digits-mlp","budget":10,"optimizer":"lion"}"#,
            r#"{"setting":"digits-mlp","budget":10,"lr":-1}"#,
            r#"{"setting":"digits-mlp","budget":10,"surprise":1}"#,
            r#"{"setting":"digits-mlp","budget":10,"dtype":"f64"}"#,
            r#"{"setting":"digits-mlp","budget":10,"dtype":"q8_0"}"#,
        ] {
            assert!(JobSpec::parse(bad, 5, 3).is_err(), "accepted {bad:?}");
        }

        let s = JobSpec::parse(
            r#"{"setting":"digits-mlp","budget":25,"dtype":"f16","max_retries":0}"#,
            5,
            3,
        )
        .unwrap();
        assert_eq!(s.dtype, "f16");
        assert_eq!(s.parsed_dtype().unwrap(), DType::F16);
        assert_eq!(s.max_retries, 0);
    }

    #[test]
    fn record_round_trips_through_json() {
        let record = JobRecord {
            id: "job-000042".to_owned(),
            spec: spec(),
            state: JobState::Done,
            metric: Some(12.5),
            error: None,
            resumes: 1,
            retries: 2,
            retry_after_ms: Some(150),
            request_id: Some("c3-r1".to_owned()),
            cancel: Arc::new(AtomicBool::new(false)),
            user_cancel: Arc::new(AtomicBool::new(false)),
            watchdog_fired: Arc::new(AtomicBool::new(false)),
        };
        let back = JobRecord::from_json(&record.to_json()).unwrap();
        assert_eq!(back.id, record.id);
        assert_eq!(back.spec, record.spec);
        assert_eq!(back.state, record.state);
        assert_eq!(back.metric, record.metric);
        assert_eq!(back.resumes, 1);
        assert_eq!(back.retries, 2);
        assert_eq!(back.retry_after_ms, Some(150));
        assert_eq!(back.spec.max_retries, DEFAULT_MAX_RETRIES);
        assert_eq!(back.request_id.as_deref(), Some("c3-r1"));

        // manifests written before request ids existed still parse
        let legacy = record.to_json().replace(",\"request_id\":\"c3-r1\"", "");
        assert_eq!(JobRecord::from_json(&legacy).unwrap().request_id, None);
    }

    #[test]
    fn ledger_persists_and_reopens() {
        let dir = tmp_dir("reopen");
        {
            let ledger = Ledger::open(&dir).unwrap();
            let a = ledger.create(spec(), None);
            ledger.commit(&a).unwrap();
            ledger
                .set_state(&a.id, JobState::Done, Some(3.5), None)
                .unwrap();
            let b = ledger.create(spec(), None);
            ledger.commit(&b).unwrap();
            ledger
                .set_state(&b.id, JobState::Running, None, None)
                .unwrap();
            // a discarded record leaves no trace
            let c = ledger.create(spec(), None);
            ledger.discard(&c.id);
        }
        let ledger = Ledger::open(&dir).unwrap();
        let jobs = ledger.list();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].state, JobState::Done);
        assert_eq!(jobs[0].metric, Some(3.5));
        // the running job came back queued, resume count bumped
        assert_eq!(jobs[1].state, JobState::Queued);
        assert_eq!(jobs[1].resumes, 1);
        assert_eq!(ledger.recoverable().unwrap(), vec![jobs[1].id.clone()]);
        // the discarded id was never accepted, so allocation reclaims it
        let d = ledger.create(spec(), None);
        assert_eq!(d.id, "job-000003");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn run_job_trains_to_done_and_cancel_pre_run_short_circuits() {
        let dir = tmp_dir("run");
        let ledger = Ledger::open(&dir).unwrap();
        let registry = MetricsRegistry::shared();

        let job = ledger.create(spec(), None);
        ledger.commit(&job).unwrap();
        assert_eq!(
            run_job(&ledger, &registry, &job.id, &RunCtx::default()).unwrap(),
            RunOutcome::Done
        );
        let done = ledger.get(&job.id).unwrap();
        assert_eq!(done.state, JobState::Done);
        assert!(done.metric.is_some());
        assert!(ledger.trace_path(&job.id).is_file());
        assert!(ledger.ckpt_path(&job.id).is_file());
        assert_eq!(registry.counter("rex_jobs_completed_total"), 1);

        let job2 = ledger.create(spec(), None);
        ledger.commit(&job2).unwrap();
        job2.cancel.store(true, Ordering::Release);
        assert_eq!(
            run_job(&ledger, &registry, &job2.id, &RunCtx::default()).unwrap(),
            RunOutcome::Canceled
        );
        assert_eq!(ledger.get(&job2.id).unwrap().state, JobState::Canceled);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_jittered() {
        for attempt in 1..=10u64 {
            let a = backoff_ms("job-000001", attempt);
            assert_eq!(a, backoff_ms("job-000001", attempt), "not deterministic");
            let ceiling = (50u64 << (attempt - 1).min(8)).min(5_000);
            assert!(
                (1..=ceiling).contains(&a),
                "attempt {attempt}: {a} > {ceiling}"
            );
        }
        // different jobs draw different pauses (full jitter, not lockstep)
        assert_ne!(backoff_ms("job-000001", 3), backoff_ms("job-000002", 3));
    }

    #[test]
    fn record_retry_books_backoff_and_clears_halt_flags() {
        let dir = tmp_dir("retry");
        let ledger = Ledger::open(&dir).unwrap();
        let job = ledger.create(spec(), None);
        ledger.commit(&job).unwrap();
        ledger
            .set_state(&job.id, JobState::Running, None, None)
            .unwrap();
        job.cancel.store(true, Ordering::Release);
        job.watchdog_fired.store(true, Ordering::Release);

        let back = ledger.record_retry(&job.id, 250).unwrap().unwrap();
        assert_eq!(back.state, JobState::Queued);
        assert_eq!(back.retries, 1);
        assert_eq!(back.retry_after_ms, Some(250));
        assert!(!job.cancel.load(Ordering::Acquire));
        assert!(!job.watchdog_fired.load(Ordering::Acquire));

        // the retry budget survives a daemon restart
        let ledger = Ledger::open(&dir).unwrap();
        let revived = ledger.get(&job.id).unwrap();
        assert_eq!(revived.retries, 1);
        assert_eq!(revived.retry_after_ms, Some(250));
        // a fresh attempt clears the advertised backoff
        ledger
            .set_state(&job.id, JobState::Running, None, None)
            .unwrap();
        assert_eq!(ledger.get(&job.id).unwrap().retry_after_ms, None);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn poisoned_checkpoint_is_quarantined_and_job_restarts_fresh() {
        let dir = tmp_dir("poison");
        let ledger = Ledger::open(&dir).unwrap();
        let registry = MetricsRegistry::shared();
        let job = ledger.create(spec(), None);
        ledger.commit(&job).unwrap();
        std::fs::create_dir_all(ledger.job_dir(&job.id)).unwrap();
        std::fs::write(
            ledger.ckpt_path(&job.id),
            b"REXSTATE1 this is not a checkpoint",
        )
        .unwrap();

        assert_eq!(
            run_job(&ledger, &registry, &job.id, &RunCtx::default()).unwrap(),
            RunOutcome::Done
        );
        assert!(ledger
            .ckpt_path(&job.id)
            .with_extension("state.poisoned")
            .is_file());
        assert!(registry.counter("rex_ckpt_quarantined_total") >= 1);
        let _ = std::fs::remove_dir_all(dir);
    }
}
