//! A minimal HTTP/1.1 codec over `BufRead`/`Write`.
//!
//! Just enough protocol for the job API: request-line + header parsing
//! with hard size limits, `Content-Length` and `chunked` bodies in both
//! directions, keep-alive, and a deterministic mapping from parse
//! failures to status codes. The codec is pure — it never owns a socket —
//! so the table-driven unit suite in `tests/http_codec.rs` can drive it
//! from byte slices: malformed request lines, oversized headers, chunked
//! round-trips, pipelined requests, and abrupt disconnects, no
//! `TcpStream` required.

use std::io::{self, BufRead, Write};

/// Cap on the request line plus all headers, bytes.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Cap on the number of headers.
pub const MAX_HEADERS: usize = 100;
/// Cap on a request body, bytes.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// How reading a request can fail.
#[derive(Debug)]
pub enum HttpError {
    /// Clean EOF before the first request byte: the peer closed an idle
    /// keep-alive connection. Not an error response; just close.
    Closed,
    /// EOF mid-request (abrupt disconnect). Nobody is left to respond to.
    Truncated,
    /// Unparseable request (maps to 400).
    Malformed(String),
    /// Request line + headers exceed [`MAX_HEAD_BYTES`] or
    /// [`MAX_HEADERS`] (431).
    HeadTooLarge,
    /// Declared or actual body exceeds [`MAX_BODY_BYTES`] (413).
    BodyTooLarge,
    /// Not HTTP/1.0 or HTTP/1.1 (505).
    UnsupportedVersion(String),
    /// The socket read timed out mid-request (408).
    Timeout,
    /// Any other transport error.
    Io(io::Error),
}

impl HttpError {
    /// The status line to answer with, or `None` when the connection is
    /// already gone (closed/truncated/transport error).
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            HttpError::Closed | HttpError::Truncated | HttpError::Io(_) => None,
            HttpError::Malformed(_) => Some((400, "Bad Request")),
            HttpError::HeadTooLarge => Some((431, "Request Header Fields Too Large")),
            HttpError::BodyTooLarge => Some((413, "Content Too Large")),
            HttpError::UnsupportedVersion(_) => Some((505, "HTTP Version Not Supported")),
            HttpError::Timeout => Some((408, "Request Timeout")),
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::Truncated => write!(f, "connection truncated mid-request"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::HeadTooLarge => write!(f, "request head too large"),
            HttpError::BodyTooLarge => write!(f, "request body too large"),
            HttpError::UnsupportedVersion(v) => write!(f, "unsupported HTTP version {v:?}"),
            HttpError::Timeout => write!(f, "read timed out"),
            HttpError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => HttpError::Timeout,
            io::ErrorKind::UnexpectedEof => HttpError::Truncated,
            _ => HttpError::Io(e),
        }
    }
}

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Method verb, as sent (`GET`, `POST`, …).
    pub method: String,
    /// Raw request target, query string included.
    pub target: String,
    /// `HTTP/1.0` or `HTTP/1.1`.
    pub version: String,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Decoded body (`Content-Length` or chunked).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The target without its query string.
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// The query string, if any.
    pub fn query(&self) -> Option<&str> {
        self.target.split_once('?').map(|(_, q)| q)
    }

    /// Whether the peer asked to close the connection after this exchange.
    pub fn wants_close(&self) -> bool {
        match self.header("connection") {
            Some(v) => v.eq_ignore_ascii_case("close"),
            // HTTP/1.0 defaults to close, 1.1 to keep-alive
            None => self.version == "HTTP/1.0",
        }
    }
}

/// Reads one line (LF-terminated, CR stripped), counting its bytes
/// against `budget`. `Ok(None)` means clean EOF with zero bytes read.
fn read_line_budgeted<R: BufRead>(
    r: &mut R,
    budget: &mut usize,
) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    loop {
        let buf = r.fill_buf()?;
        if buf.is_empty() {
            if line.is_empty() {
                return Ok(None);
            }
            return Err(HttpError::Truncated);
        }
        let nl = buf.iter().position(|&b| b == b'\n');
        let take = nl.map_or(buf.len(), |i| i + 1);
        if take > *budget {
            return Err(HttpError::HeadTooLarge);
        }
        *budget -= take;
        line.extend_from_slice(&buf[..take]);
        r.consume(take);
        if nl.is_some() {
            break;
        }
    }
    line.pop(); // '\n'
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line)
        .map(Some)
        .map_err(|_| HttpError::Malformed("request head is not valid UTF-8".to_owned()))
}

/// Reads exactly `n` bytes.
fn read_exact_body<R: BufRead>(r: &mut R, n: usize) -> Result<Vec<u8>, HttpError> {
    let mut body = vec![0u8; n];
    r.read_exact(&mut body)?;
    Ok(body)
}

/// Decodes a `Transfer-Encoding: chunked` body (trailers discarded).
///
/// # Errors
///
/// [`HttpError::Malformed`] on bad chunk framing, [`HttpError::BodyTooLarge`]
/// past [`MAX_BODY_BYTES`], transport errors otherwise.
pub fn read_chunked_body<R: BufRead>(r: &mut R) -> Result<Vec<u8>, HttpError> {
    let mut body = Vec::new();
    loop {
        let mut line_budget = 256;
        let size_line = read_line_budgeted(r, &mut line_budget)?.ok_or(HttpError::Truncated)?;
        let size_str = size_line.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_str, 16)
            .map_err(|_| HttpError::Malformed(format!("bad chunk size {size_str:?}")))?;
        if size == 0 {
            // trailer section: lines until the empty one
            loop {
                let mut budget = MAX_HEAD_BYTES;
                match read_line_budgeted(r, &mut budget)? {
                    None => return Err(HttpError::Truncated),
                    Some(l) if l.is_empty() => return Ok(body),
                    Some(_) => {}
                }
            }
        }
        if body.len() + size > MAX_BODY_BYTES {
            return Err(HttpError::BodyTooLarge);
        }
        body.extend_from_slice(&read_exact_body(r, size)?);
        let mut crlf = [0u8; 2];
        r.read_exact(&mut crlf)?;
        if &crlf != b"\r\n" {
            return Err(HttpError::Malformed(
                "chunk data not CRLF-terminated".to_owned(),
            ));
        }
    }
}

/// Reads one full request (head + body) from `r`.
///
/// # Errors
///
/// See [`HttpError`]; [`HttpError::Closed`] is the normal end of a
/// keep-alive connection.
pub fn read_request<R: BufRead>(r: &mut R) -> Result<Request, HttpError> {
    let mut budget = MAX_HEAD_BYTES;
    let request_line = match read_line_budgeted(r, &mut budget)? {
        None => return Err(HttpError::Closed),
        Some(l) => l,
    };
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => {
            (m.to_owned(), t.to_owned(), v.to_owned())
        }
        _ => {
            return Err(HttpError::Malformed(format!(
                "bad request line {request_line:?}"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::UnsupportedVersion(version));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line_budgeted(r, &mut budget)?.ok_or(HttpError::Truncated)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::HeadTooLarge);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header line {line:?}")))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Malformed(format!("bad header name {name:?}")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
    }

    let mut req = Request {
        method,
        target,
        version,
        headers,
        body: Vec::new(),
    };
    let chunked = req
        .header("transfer-encoding")
        .is_some_and(|v| v.to_ascii_lowercase().contains("chunked"));
    if chunked {
        req.body = read_chunked_body(r)?;
    } else if let Some(len) = req.header("content-length") {
        let n: usize = len
            .trim()
            .parse()
            .map_err(|_| HttpError::Malformed(format!("bad Content-Length {len:?}")))?;
        if n > MAX_BODY_BYTES {
            return Err(HttpError::BodyTooLarge);
        }
        req.body = read_exact_body(r, n)?;
    }
    Ok(req)
}

/// The canonical reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Content Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "",
    }
}

/// Writes a complete `Content-Length`-framed response.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_response<W: Write>(
    w: &mut W,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<()> {
    write!(w, "HTTP/1.1 {status} {}\r\n", reason(status))?;
    write!(w, "Content-Type: {content_type}\r\n")?;
    write!(w, "Content-Length: {}\r\n", body.len())?;
    for (name, value) in extra_headers {
        write!(w, "{name}: {value}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    w.write_all(body)?;
    w.flush()
}

/// Writes the head of a `Transfer-Encoding: chunked` response; follow with
/// a [`ChunkedWriter`].
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_chunked_head<W: Write>(w: &mut W, status: u16, content_type: &str) -> io::Result<()> {
    write!(w, "HTTP/1.1 {status} {}\r\n", reason(status))?;
    write!(w, "Content-Type: {content_type}\r\n")?;
    w.write_all(b"Transfer-Encoding: chunked\r\n\r\n")?;
    w.flush()
}

/// Encoder for a chunked response body.
pub struct ChunkedWriter<'a, W: Write> {
    w: &'a mut W,
}

impl<'a, W: Write> ChunkedWriter<'a, W> {
    /// Wraps `w`, which must already carry a chunked head.
    pub fn new(w: &'a mut W) -> Self {
        ChunkedWriter { w }
    }

    /// Writes one chunk and flushes it (streaming readers see it
    /// immediately). Empty input is skipped — a zero-size chunk would
    /// terminate the stream.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn write_chunk(&mut self, data: &[u8]) -> io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.w, "{:x}\r\n", data.len())?;
        self.w.write_all(data)?;
        self.w.write_all(b"\r\n")?;
        self.w.flush()
    }

    /// Terminates the stream with the zero-size chunk.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn finish(self) -> io::Result<()> {
        self.w.write_all(b"0\r\n\r\n")?;
        self.w.flush()
    }
}
