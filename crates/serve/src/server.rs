//! The HTTP server: listener, connection handlers, and the worker pool
//! that drains the job queue.
//!
//! Architecture: one acceptor thread takes connections off a
//! `TcpListener` and hands each to a short-lived handler thread; handler
//! threads parse requests with the [`crate::http`] codec and touch only
//! the shared [`Ledger`]/[`BoundedQueue`]/[`MetricsRegistry`]; `workers`
//! long-lived worker threads block on the queue and run jobs to terminal
//! states. Training never happens on a connection thread, so a slow or
//! dead client cannot stall a run, and admission control (the bounded
//! queue) is the only thing standing between a submission burst and the
//! trainer.

use std::collections::BTreeMap;
use std::io::{BufReader, Read, Seek, SeekFrom, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use rex_telemetry::MetricsRegistry;

use crate::http::{self, ChunkedWriter, Request};
use crate::jobs::{backoff_ms, run_job, JobSpec, JobState, Ledger, RunCtx, RunOutcome};
use crate::queue::BoundedQueue;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Root of the server's durable state (`jobs/<id>/…`).
    pub data_dir: PathBuf,
    /// Admission bound of the job queue.
    pub queue_depth: usize,
    /// Number of job-executing worker threads.
    pub workers: usize,
    /// Socket read timeout for request parsing, milliseconds.
    pub read_timeout_ms: u64,
    /// `Retry-After` value advertised on 429 responses, seconds.
    pub retry_after_secs: u64,
    /// Checkpoint cadence for jobs that do not specify one; 0 disables.
    pub default_checkpoint_every: u64,
    /// Access-log destination; `None` disables request logging.
    pub access_log: Option<PathBuf>,
    /// When set, each job's worker collects a phase-span profile and
    /// writes `jobs/<id>/profile.json` (Chrome trace-event JSON).
    pub profile: bool,
    /// Re-export the legacy `*_min_seconds` / `*_max_seconds` timer
    /// gauges alongside the histogram series (one-release compat shim).
    pub metrics_compat: bool,
    /// Hung-job watchdog: a running job making no step progress for this
    /// many seconds is halted and retried as a transient failure. 0
    /// disables the watchdog.
    pub watchdog_secs: u64,
    /// Retry budget for jobs whose spec does not set `max_retries`.
    pub default_max_retries: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            data_dir: PathBuf::from("serve-data"),
            queue_depth: 16,
            workers: 1,
            read_timeout_ms: 5_000,
            retry_after_secs: 1,
            default_checkpoint_every: 5,
            access_log: None,
            profile: false,
            metrics_compat: false,
            watchdog_secs: 0,
            default_max_retries: crate::jobs::DEFAULT_MAX_RETRIES,
        }
    }
}

/// What the supervisor watches about one running job: the step heartbeat
/// published by the trainer, and when it last advanced.
struct WatchEntry {
    heartbeat: Arc<AtomicU64>,
    last_step: u64,
    since: Instant,
    cancel: Arc<AtomicBool>,
    watchdog_fired: Arc<AtomicBool>,
}

struct Shared {
    cfg: ServeConfig,
    queue: BoundedQueue<String>,
    ledger: Ledger,
    metrics: Arc<MetricsRegistry>,
    stop: AtomicBool,
    /// Graceful drain in progress: admission answers 503, running jobs
    /// are handed back to `Queued` at their next step boundary.
    draining: Arc<AtomicBool>,
    /// Jobs currently on a worker, keyed by id — the watchdog's view.
    running: Mutex<BTreeMap<String, WatchEntry>>,
    /// Transiently failed jobs waiting out their backoff, re-queued by
    /// the supervisor when due.
    retry_at: Mutex<Vec<(Instant, String)>>,
    /// Open access-log sink (append mode), when enabled.
    access_log: Option<Mutex<std::fs::File>>,
    /// Server start time, for `/healthz` uptime and utilization gauges.
    started: Instant,
    /// Connection counter feeding request ids (`c<N>-r<M>`).
    conn_seq: AtomicU64,
}

/// A running server: listener, acceptor, and worker threads.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    supervisor: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Opens the ledger, re-enqueues every non-terminal job found on
    /// disk, binds the listener, and spawns the acceptor and workers.
    ///
    /// # Errors
    ///
    /// Propagates bind and ledger-recovery failures.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let ledger = Ledger::open(&cfg.data_dir)?;
        let metrics = MetricsRegistry::shared();
        let queue = BoundedQueue::new(cfg.queue_depth);

        let recovered = ledger.recoverable()?;
        for id in &recovered {
            // recovery must not be bounced by the admission bound
            queue.push_unbounded(id.clone());
            metrics.counter_inc("rex_jobs_resumed_total", 1);
        }
        metrics.set_summary_compat(cfg.metrics_compat);
        let access_log = match &cfg.access_log {
            Some(path) => Some(Mutex::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?,
            )),
            None => None,
        };

        let shared = Arc::new(Shared {
            cfg,
            queue,
            ledger,
            metrics,
            stop: AtomicBool::new(false),
            draining: Arc::new(AtomicBool::new(false)),
            running: Mutex::new(BTreeMap::new()),
            retry_at: Mutex::new(Vec::new()),
            access_log,
            started: Instant::now(),
            conn_seq: AtomicU64::new(0),
        });

        let mut workers = Vec::new();
        for _ in 0..shared.cfg.workers.max(1) {
            let shared = Arc::clone(&shared);
            workers.push(std::thread::spawn(move || worker_loop(&shared)));
        }
        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || supervisor_loop(&shared))
        };

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shared.stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let shared = Arc::clone(&shared);
                    std::thread::spawn(move || handle_conn(&shared, stream));
                }
            })
        };

        Ok(Server {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers,
            supervisor: Some(supervisor),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics registry.
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.shared.metrics)
    }

    /// Blocks forever on the acceptor (the `rexd` foreground mode).
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }

    /// Graceful stop: refuse new work, cancel running jobs cooperatively,
    /// and join the acceptor and workers.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.queue.shutdown();
        self.shared.ledger.cancel_all();
        // unblock the acceptor's blocking accept with a throwaway conn
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
    }

    /// Graceful drain (the SIGTERM path): stop admitting (submissions get
    /// 503 + Retry-After, `/readyz` flips to 503), park queued jobs where
    /// they are (their manifests stay `Queued`, so the next daemon life
    /// re-enqueues them), halt running jobs at their next step boundary —
    /// the trainer writes a final checkpoint, and the job goes back to
    /// `Queued`, not `Canceled` — then take the listener down. Every
    /// manifest is flushed before this returns.
    pub fn drain(mut self) {
        self.shared.draining.store(true, Ordering::Release);
        // Empty the in-memory queue first so no worker picks up new work;
        // the jobs stay Queued on disk.
        while self.shared.queue.remove(|_| true).is_some() {}
        self.shared.queue.shutdown();
        // Now halt what is actually running, and wait for the workers to
        // hand those jobs back.
        self.shared.ledger.halt_running();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Only now stop answering: readiness said "draining" throughout.
        self.shared.stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
    }
}

/// The supervisor: re-queues retries whose backoff has elapsed, and fires
/// the hung-job watchdog. One thread, ~100 ms resolution.
fn supervisor_loop(shared: &Shared) {
    let watchdog = Duration::from_secs(shared.cfg.watchdog_secs);
    while !shared.stop.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(100));
        let draining = shared.draining.load(Ordering::Acquire);

        // Backoffs: push due jobs back into the queue. During a drain the
        // schedule is frozen — the jobs are already Queued on disk and the
        // next daemon life re-enqueues them.
        if !draining {
            let now = Instant::now();
            let due: Vec<String> = {
                let mut retry_at = shared.retry_at.lock().unwrap();
                let mut due = Vec::new();
                retry_at.retain(|(at, id)| {
                    if *at <= now {
                        due.push(id.clone());
                        false
                    } else {
                        true
                    }
                });
                due
            };
            for id in due {
                // bypass the admission bound: the job was already admitted
                shared.queue.push_unbounded(id);
                shared
                    .metrics
                    .gauge_set("rex_queue_depth", shared.queue.len() as f64);
            }
        }

        // Watchdog: a running job whose step counter has not moved for
        // watchdog_secs gets halted; run_job classifies it as transient.
        if !watchdog.is_zero() {
            let now = Instant::now();
            let mut running = shared.running.lock().unwrap();
            for (id, entry) in running.iter_mut() {
                let step = entry.heartbeat.load(Ordering::Acquire);
                if step != entry.last_step {
                    entry.last_step = step;
                    entry.since = now;
                } else if now.duration_since(entry.since) >= watchdog
                    && !entry.watchdog_fired.load(Ordering::Acquire)
                {
                    eprintln!(
                        "rexd: watchdog: {id} made no step progress in {}s, halting for retry",
                        shared.cfg.watchdog_secs
                    );
                    entry.watchdog_fired.store(true, Ordering::Release);
                    entry.cancel.store(true, Ordering::Release);
                    shared.metrics.counter_inc("rex_jobs_watchdog_total", 1);
                }
            }
        }
    }
}

/// Books a transient failure: within budget the job is re-queued after a
/// deterministic full-jitter backoff; over budget it fails for good.
fn supervise_retry(shared: &Shared, id: &str, reason: &str) {
    let Some(record) = shared.ledger.get(id) else {
        return;
    };
    let attempt = record.retries + 1;
    if attempt > record.spec.max_retries {
        let _ = shared.ledger.set_state(
            id,
            JobState::Failed,
            None,
            Some(format!(
                "giving up after {} retries: {reason}",
                record.retries
            )),
        );
        shared.metrics.counter_inc("rex_jobs_failed_total", 1);
        return;
    }
    let pause = backoff_ms(id, attempt);
    eprintln!(
        "rexd: {id} failed transiently ({reason}); retry {attempt}/{} in {pause}ms",
        record.spec.max_retries
    );
    if shared.ledger.record_retry(id, pause).is_err() {
        // the manifest itself is unwritable — nothing durable to lean on
        shared.metrics.counter_inc("rex_jobs_failed_total", 1);
        return;
    }
    shared.metrics.counter_inc("rex_jobs_retried_total", 1);
    if shared.stop.load(Ordering::Acquire) || shared.draining.load(Ordering::Acquire) {
        return; // stays Queued on disk; the next daemon life retries it
    }
    shared
        .retry_at
        .lock()
        .unwrap()
        .push((Instant::now() + Duration::from_millis(pause), id.to_owned()));
}

fn worker_loop(shared: &Shared) {
    while let Some((_ticket, id)) = shared.queue.pop() {
        shared
            .metrics
            .gauge_set("rex_queue_depth", shared.queue.len() as f64);
        let started = Instant::now();
        // Profiling is per worker thread: the whole job (trainer loop and
        // kernel dispatch) runs on this thread, so the thread-local span
        // collector sees the full tree. Spans never touch the Recorder,
        // so the job's JSONL trace stays byte-identical either way.
        if shared.cfg.profile {
            rex_telemetry::span::enable(rex_telemetry::span::Detail::Phase);
        }
        let heartbeat = Arc::new(AtomicU64::new(0));
        if let Some(record) = shared.ledger.get(&id) {
            shared.running.lock().unwrap().insert(
                id.clone(),
                WatchEntry {
                    heartbeat: Arc::clone(&heartbeat),
                    last_step: 0,
                    since: Instant::now(),
                    cancel: Arc::clone(&record.cancel),
                    watchdog_fired: Arc::clone(&record.watchdog_fired),
                },
            );
        }
        let ctx = RunCtx {
            draining: Some(Arc::clone(&shared.draining)),
            heartbeat: Some(heartbeat),
        };
        let result = run_job(&shared.ledger, &shared.metrics, &id, &ctx);
        shared.running.lock().unwrap().remove(&id);
        match result {
            Ok(RunOutcome::Retry(reason)) => supervise_retry(shared, &id, &reason),
            // An IO failure on the manifest itself must not kill the
            // worker; retry it like any other transient fault.
            Err(e) => supervise_retry(shared, &id, &format!("job infrastructure error: {e}")),
            Ok(_) => {}
        }
        if shared.cfg.profile {
            let profile = rex_telemetry::span::take();
            let path = shared.ledger.job_dir(&id).join("profile.json");
            let _ = std::fs::write(&path, profile.to_chrome_trace());
        }
        shared.metrics.timer_observe_ns(
            "rex_job_duration",
            u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
        );
    }
}

/// A byte-counting [`Write`] wrapper around the connection stream.
///
/// Buffers the response head until the status line is complete, then
/// injects an `X-Request-Id` header right after it — so every handler
/// gets the header and the access log gets the status code without
/// threading either through each route branch.
struct Metered<'a> {
    inner: &'a mut TcpStream,
    request_id: &'a str,
    /// Bytes written on the wire (including the injected header).
    bytes: u64,
    /// Status code parsed off the status line; 0 until one is written.
    status: u16,
    head: Vec<u8>,
    head_done: bool,
}

impl<'a> Metered<'a> {
    fn new(inner: &'a mut TcpStream, request_id: &'a str) -> Metered<'a> {
        Metered {
            inner,
            request_id,
            bytes: 0,
            status: 0,
            head: Vec::new(),
            head_done: false,
        }
    }
}

impl Write for Metered<'_> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.head_done {
            let n = self.inner.write(buf)?;
            self.bytes += n as u64;
            return Ok(n);
        }
        self.head.extend_from_slice(buf);
        if let Some(pos) = self.head.windows(2).position(|w| w == b"\r\n") {
            // "HTTP/1.1 NNN ..." — the three digits after the version
            self.status = std::str::from_utf8(&self.head[..pos])
                .ok()
                .and_then(|line| line.split(' ').nth(1))
                .and_then(|code| code.parse().ok())
                .unwrap_or(0);
            let mut out = Vec::with_capacity(self.head.len() + 32);
            out.extend_from_slice(&self.head[..pos + 2]);
            out.extend_from_slice(format!("X-Request-Id: {}\r\n", self.request_id).as_bytes());
            out.extend_from_slice(&self.head[pos + 2..]);
            self.inner.write_all(&out)?;
            self.bytes += out.len() as u64;
            self.head_done = true;
            self.head.clear();
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

fn handle_conn(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(
        shared.cfg.read_timeout_ms.max(1),
    )));
    // A write deadline too: a stalled peer must not pin a handler thread
    // (or a drain) forever.
    let _ = stream.set_write_timeout(Some(Duration::from_millis(
        shared.cfg.read_timeout_ms.max(1),
    )));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    let conn = shared.conn_seq.fetch_add(1, Ordering::Relaxed) + 1;
    let mut reqno: u64 = 0;
    loop {
        let req = match http::read_request(&mut reader) {
            Ok(req) => req,
            Err(e) => {
                // Not a parseable request: no request id, no access-log
                // line — just the protocol error response.
                if let Some((status, _)) = e.status() {
                    shared.metrics.counter_inc("rex_http_errors_total", 1);
                    let body = format!(
                        "{{\"error\":\"{}\"}}\n",
                        rex_telemetry::json::escape(&e.to_string())
                    );
                    let _ = http::write_response(
                        &mut writer,
                        status,
                        "application/json",
                        &[("Connection", "close")],
                        body.as_bytes(),
                    );
                }
                return;
            }
        };
        shared.metrics.counter_inc("rex_http_requests_total", 1);
        reqno += 1;
        let request_id = format!("c{conn}-r{reqno}");
        let close = req.wants_close();
        let started = Instant::now();
        let mut metered = Metered::new(&mut writer, &request_id);
        let routed = route(shared, &req, &mut metered, &request_id);
        let (status, bytes) = (metered.status, metered.bytes);
        // Job id for the log line: the id submit_job allocated, or the id
        // embedded in a job-scoped path.
        let job = match &routed {
            Ok(Some(id)) => Some(id.clone()),
            _ => {
                let mut segments = req.path().split('/').filter(|s| !s.is_empty());
                (segments.next() == Some("v1") && segments.next() == Some("jobs"))
                    .then(|| segments.next().map(str::to_owned))
                    .flatten()
            }
        };
        if let Some(log) = &shared.access_log {
            let ts_ms = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map_or(0, |d| d.as_millis());
            let line = format!(
                "ts_ms={ts_ms} req={request_id} method={} path={} status={status} \
                 bytes={bytes} dur_us={} job={}\n",
                req.method,
                req.path(),
                started.elapsed().as_micros(),
                job.as_deref().unwrap_or("-"),
            );
            if let Ok(mut file) = log.lock() {
                let _ = file.write_all(line.as_bytes());
            }
        }
        if routed.is_err() {
            return; // peer went away mid-response
        }
        if close {
            return;
        }
    }
}

/// JSON-body convenience around [`http::write_response`].
fn respond<W: Write>(
    w: &mut W,
    status: u16,
    extra: &[(&str, &str)],
    body: &str,
) -> std::io::Result<()> {
    http::write_response(w, status, "application/json", extra, body.as_bytes())
}

fn error_body(message: &str) -> String {
    format!(
        "{{\"error\":\"{}\"}}\n",
        rex_telemetry::json::escape(message)
    )
}

/// Dispatches one request. Returns the job id allocated by a submission
/// (for the access log); every other route returns `Ok(None)`.
fn route<W: Write>(
    shared: &Shared,
    req: &Request,
    w: &mut W,
    request_id: &str,
) -> std::io::Result<Option<String>> {
    let path = req.path().to_owned();
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    let method = req.method.as_str();
    let status = match (method, segments.as_slice()) {
        ("GET", ["healthz"]) => {
            let counts = shared.ledger.counts();
            let body = format!(
                "{{\"status\":\"ok\",\"queue_depth\":{},\"jobs_running\":{},\
                 \"uptime_seconds\":{}}}\n",
                shared.queue.len(),
                counts.running,
                shared.started.elapsed().as_secs(),
            );
            return respond(w, 200, &[], &body).map(|()| None);
        }
        ("GET", ["readyz"]) => {
            // Readiness is about admission: a draining (or stopping)
            // server is still alive but will not take new jobs.
            if shared.draining.load(Ordering::Acquire) || shared.stop.load(Ordering::Acquire) {
                let retry_after = shared.cfg.retry_after_secs.to_string();
                return respond(
                    w,
                    503,
                    &[("Retry-After", retry_after.as_str())],
                    "{\"status\":\"draining\"}\n",
                )
                .map(|()| None);
            }
            return respond(w, 200, &[], "{\"status\":\"ready\"}\n").map(|()| None);
        }
        ("POST", ["v1", "jobs"]) => return submit_job(shared, req, w, request_id),
        ("GET", ["v1", "jobs"]) => {
            let mut body = String::new();
            for record in shared.ledger.list() {
                body.push_str(&record.to_json());
                body.push('\n');
            }
            return http::write_response(w, 200, "application/x-ndjson", &[], body.as_bytes())
                .map(|()| None);
        }
        ("GET", ["v1", "jobs", id]) => match shared.ledger.get(id) {
            Some(record) => {
                let mut body = record.to_json();
                body.push('\n');
                return respond(w, 200, &[], &body).map(|()| None);
            }
            None => 404,
        },
        ("DELETE", ["v1", "jobs", id]) => return cancel_job(shared, id, w).map(|()| None),
        ("GET", ["v1", "jobs", id, "trace"]) => return stream_trace(shared, id, w).map(|()| None),
        ("GET", ["metrics"]) => {
            let counts = shared.ledger.counts();
            let m = &shared.metrics;
            m.gauge_set("rex_queue_depth", shared.queue.len() as f64);
            m.gauge_set("rex_jobs_running", counts.running as f64);
            m.gauge_set("rex_jobs_queued", counts.queued as f64);
            // Compute-pool instrumentation, sampled at scrape time.
            let pool = rex_pool::stats();
            m.gauge_set("rex_pool_tasks_total", pool.jobs as f64);
            m.gauge_set("rex_pool_chunks_total", pool.chunks as f64);
            m.gauge_set(
                "rex_pool_queue_wait_seconds_total",
                pool.queue_wait_ns as f64 / 1e9,
            );
            m.gauge_set("rex_pool_exec_seconds_total", pool.exec_ns as f64 / 1e9);
            let capacity_ns =
                shared.started.elapsed().as_nanos() as f64 * rex_pool::num_threads().max(1) as f64;
            m.gauge_set(
                "rex_pool_worker_utilization",
                (pool.worker_busy_ns + pool.submitter_busy_ns) as f64 / capacity_ns.max(1.0),
            );
            let body = shared.metrics.render_prometheus();
            return http::write_response(w, 200, "text/plain; version=0.0.4", &[], body.as_bytes())
                .map(|()| None);
        }
        (_, ["healthz" | "readyz" | "metrics"]) | (_, ["v1", "jobs", ..]) => 405,
        _ => 404,
    };
    shared.metrics.counter_inc("rex_http_errors_total", 1);
    let message = match status {
        405 => format!("method {method} not allowed on {path}"),
        _ => format!("no such resource {path}"),
    };
    respond(w, status, &[], &error_body(&message)).map(|()| None)
}

fn submit_job<W: Write>(
    shared: &Shared,
    req: &Request,
    w: &mut W,
    request_id: &str,
) -> std::io::Result<Option<String>> {
    if shared.stop.load(Ordering::Acquire) || shared.draining.load(Ordering::Acquire) {
        // Not backpressure (429) but planned unavailability: tell the
        // client when to come back instead of resetting the connection.
        shared.metrics.counter_inc("rex_http_errors_total", 1);
        let retry_after = shared.cfg.retry_after_secs.to_string();
        return respond(
            w,
            503,
            &[("Retry-After", retry_after.as_str())],
            &error_body("server is draining"),
        )
        .map(|()| None);
    }
    let body = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => {
            shared.metrics.counter_inc("rex_http_errors_total", 1);
            return respond(w, 400, &[], &error_body("body is not UTF-8")).map(|()| None);
        }
    };
    let spec = match JobSpec::parse(
        body,
        shared.cfg.default_checkpoint_every,
        shared.cfg.default_max_retries,
    ) {
        Ok(spec) => spec,
        Err(e) => {
            shared.metrics.counter_inc("rex_http_errors_total", 1);
            return respond(w, 400, &[], &error_body(&e)).map(|()| None);
        }
    };

    let retry_after = shared.cfg.retry_after_secs.to_string();
    let reject = |shared: &Shared, w: &mut W| -> std::io::Result<Option<String>> {
        shared.metrics.counter_inc("rex_jobs_rejected_total", 1);
        shared.metrics.counter_inc("rex_http_errors_total", 1);
        respond(
            w,
            429,
            &[("Retry-After", retry_after.as_str())],
            &format!(
                "{{\"error\":\"queue full\",\"queue_depth\":{}}}\n",
                shared.cfg.queue_depth
            ),
        )
        .map(|()| None)
    };

    // optimistic pre-check so a saturated queue doesn't cost ledger IO
    if shared.queue.len() >= shared.queue.capacity() {
        return reject(shared, w);
    }
    let record = shared.ledger.create(spec, Some(request_id.to_owned()));
    // persist before enqueueing: a crash between the two re-enqueues the
    // job at startup instead of losing it
    if let Err(e) = shared.ledger.commit(&record) {
        shared.ledger.discard(&record.id);
        shared.metrics.counter_inc("rex_http_errors_total", 1);
        return respond(
            w,
            500,
            &[],
            &error_body(&format!("ledger write failed: {e}")),
        )
        .map(|()| None);
    }
    if shared.queue.try_push(record.id.clone()).is_err() {
        shared.ledger.discard(&record.id);
        return reject(shared, w);
    }
    shared.metrics.counter_inc("rex_jobs_submitted_total", 1);
    shared
        .metrics
        .gauge_set("rex_queue_depth", shared.queue.len() as f64);
    respond(
        w,
        202,
        &[],
        &format!("{{\"id\":\"{}\",\"state\":\"queued\"}}\n", record.id),
    )
    .map(|()| Some(record.id))
}

fn cancel_job<W: Write>(shared: &Shared, id: &str, w: &mut W) -> std::io::Result<()> {
    let Some(record) = shared.ledger.get(id) else {
        shared.metrics.counter_inc("rex_http_errors_total", 1);
        return respond(w, 404, &[], &error_body(&format!("no such job {id}")));
    };
    if record.state.is_terminal() {
        // Idempotent: canceling a job that can no longer run is success,
        // so retried DELETEs (lost response, impatient client) are safe.
        return respond(
            w,
            200,
            &[],
            &format!("{{\"state\":\"{}\"}}\n", record.state.name()),
        );
    }
    // set the flags first: if a worker pops the job in this window, it
    // observes them before training starts
    record.user_cancel.store(true, Ordering::Release);
    record.cancel.store(true, Ordering::Release);
    if record.state == JobState::Queued && shared.queue.remove(|qid| qid == id).is_some() {
        shared
            .ledger
            .set_state(id, JobState::Canceled, None, None)?;
        shared.metrics.counter_inc("rex_jobs_canceled_total", 1);
        shared
            .metrics
            .gauge_set("rex_queue_depth", shared.queue.len() as f64);
        return respond(w, 200, &[], "{\"state\":\"canceled\"}\n");
    }
    respond(w, 202, &[], "{\"state\":\"canceling\"}\n")
}

/// Streams a job's JSONL trace as a chunked response, following the file
/// while the job is live — `curl` sees step lines appear as the trainer
/// emits them.
fn stream_trace<W: Write>(shared: &Shared, id: &str, w: &mut W) -> std::io::Result<()> {
    if shared.ledger.get(id).is_none() {
        shared.metrics.counter_inc("rex_http_errors_total", 1);
        return respond(w, 404, &[], &error_body(&format!("no such job {id}")));
    }
    let path = shared.ledger.trace_path(id);
    http::write_chunked_head(w, 200, "application/x-ndjson")?;
    let mut chunks = ChunkedWriter::new(w);
    let mut offset: u64 = 0;
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        let terminal = shared.ledger.get(id).is_none_or(|r| r.state.is_terminal());
        let mut drained = true;
        if let Ok(mut file) = std::fs::File::open(&path) {
            file.seek(SeekFrom::Start(offset))?;
            loop {
                let n = file.read(&mut buf)?;
                if n == 0 {
                    break;
                }
                offset += n as u64;
                chunks.write_chunk(&buf[..n])?;
                drained = false;
            }
        }
        if terminal && drained {
            return chunks.finish();
        }
        if shared.stop.load(Ordering::Acquire) {
            return chunks.finish();
        }
        if drained {
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}
