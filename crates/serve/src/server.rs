//! The HTTP server: listener, connection handlers, and the worker pool
//! that drains the job queue.
//!
//! Architecture: one acceptor thread takes connections off a
//! `TcpListener` and hands each to a short-lived handler thread; handler
//! threads parse requests with the [`crate::http`] codec and touch only
//! the shared [`Ledger`]/[`BoundedQueue`]/[`MetricsRegistry`]; `workers`
//! long-lived worker threads block on the queue and run jobs to terminal
//! states. Training never happens on a connection thread, so a slow or
//! dead client cannot stall a run, and admission control (the bounded
//! queue) is the only thing standing between a submission burst and the
//! trainer.

use std::io::{BufReader, Read, Seek, SeekFrom};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rex_telemetry::MetricsRegistry;

use crate::http::{self, ChunkedWriter, Request};
use crate::jobs::{run_job, JobSpec, JobState, Ledger};
use crate::queue::BoundedQueue;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Root of the server's durable state (`jobs/<id>/…`).
    pub data_dir: PathBuf,
    /// Admission bound of the job queue.
    pub queue_depth: usize,
    /// Number of job-executing worker threads.
    pub workers: usize,
    /// Socket read timeout for request parsing, milliseconds.
    pub read_timeout_ms: u64,
    /// `Retry-After` value advertised on 429 responses, seconds.
    pub retry_after_secs: u64,
    /// Checkpoint cadence for jobs that do not specify one; 0 disables.
    pub default_checkpoint_every: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            data_dir: PathBuf::from("serve-data"),
            queue_depth: 16,
            workers: 1,
            read_timeout_ms: 5_000,
            retry_after_secs: 1,
            default_checkpoint_every: 5,
        }
    }
}

struct Shared {
    cfg: ServeConfig,
    queue: BoundedQueue<String>,
    ledger: Ledger,
    metrics: Arc<MetricsRegistry>,
    stop: AtomicBool,
}

/// A running server: listener, acceptor, and worker threads.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Opens the ledger, re-enqueues every non-terminal job found on
    /// disk, binds the listener, and spawns the acceptor and workers.
    ///
    /// # Errors
    ///
    /// Propagates bind and ledger-recovery failures.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let ledger = Ledger::open(&cfg.data_dir)?;
        let metrics = MetricsRegistry::shared();
        let queue = BoundedQueue::new(cfg.queue_depth);

        let recovered = ledger.recoverable()?;
        for id in &recovered {
            // recovery must not be bounced by the admission bound
            queue.push_unbounded(id.clone());
            metrics.counter_inc("rex_jobs_resumed_total", 1);
        }

        let shared = Arc::new(Shared {
            cfg,
            queue,
            ledger,
            metrics,
            stop: AtomicBool::new(false),
        });

        let mut workers = Vec::new();
        for _ in 0..shared.cfg.workers.max(1) {
            let shared = Arc::clone(&shared);
            workers.push(std::thread::spawn(move || worker_loop(&shared)));
        }

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shared.stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let shared = Arc::clone(&shared);
                    std::thread::spawn(move || handle_conn(&shared, stream));
                }
            })
        };

        Ok(Server {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics registry.
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.shared.metrics)
    }

    /// Blocks forever on the acceptor (the `rexd` foreground mode).
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }

    /// Graceful stop: refuse new work, cancel running jobs cooperatively,
    /// and join the acceptor and workers.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.queue.shutdown();
        self.shared.ledger.cancel_all();
        // unblock the acceptor's blocking accept with a throwaway conn
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some((_ticket, id)) = shared.queue.pop() {
        shared
            .metrics
            .gauge_set("rex_queue_depth", shared.queue.len() as f64);
        let started = Instant::now();
        // An IO failure (full disk, fault injection) must not kill the
        // worker; record it on the job if the manifest is still writable.
        if let Err(e) = run_job(&shared.ledger, &shared.metrics, &id) {
            let _ = shared.ledger.set_state(
                &id,
                JobState::Failed,
                None,
                Some(format!("job infrastructure error: {e}")),
            );
            shared.metrics.counter_inc("rex_jobs_failed_total", 1);
        }
        shared.metrics.timer_observe_ns(
            "rex_job_duration",
            u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
        );
    }
}

fn handle_conn(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(
        shared.cfg.read_timeout_ms.max(1),
    )));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    loop {
        let req = match http::read_request(&mut reader) {
            Ok(req) => req,
            Err(e) => {
                if let Some((status, _)) = e.status() {
                    shared.metrics.counter_inc("rex_http_errors_total", 1);
                    let body = format!(
                        "{{\"error\":\"{}\"}}\n",
                        rex_telemetry::json::escape(&e.to_string())
                    );
                    let _ = http::write_response(
                        &mut writer,
                        status,
                        "application/json",
                        &[("Connection", "close")],
                        body.as_bytes(),
                    );
                }
                return;
            }
        };
        shared.metrics.counter_inc("rex_http_requests_total", 1);
        let close = req.wants_close();
        if route(shared, &req, &mut writer).is_err() {
            return; // peer went away mid-response
        }
        if close {
            return;
        }
    }
}

/// JSON-body convenience around [`http::write_response`].
fn respond(
    w: &mut TcpStream,
    status: u16,
    extra: &[(&str, &str)],
    body: &str,
) -> std::io::Result<()> {
    http::write_response(w, status, "application/json", extra, body.as_bytes())
}

fn error_body(message: &str) -> String {
    format!(
        "{{\"error\":\"{}\"}}\n",
        rex_telemetry::json::escape(message)
    )
}

fn route(shared: &Shared, req: &Request, w: &mut TcpStream) -> std::io::Result<()> {
    let path = req.path().to_owned();
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    let method = req.method.as_str();
    let status = match (method, segments.as_slice()) {
        ("GET", ["healthz"]) => {
            return http::write_response(w, 200, "text/plain", &[], b"ok\n");
        }
        ("POST", ["v1", "jobs"]) => return submit_job(shared, req, w),
        ("GET", ["v1", "jobs"]) => {
            let mut body = String::new();
            for record in shared.ledger.list() {
                body.push_str(&record.to_json());
                body.push('\n');
            }
            return http::write_response(w, 200, "application/x-ndjson", &[], body.as_bytes());
        }
        ("GET", ["v1", "jobs", id]) => match shared.ledger.get(id) {
            Some(record) => {
                let mut body = record.to_json();
                body.push('\n');
                return respond(w, 200, &[], &body);
            }
            None => 404,
        },
        ("DELETE", ["v1", "jobs", id]) => return cancel_job(shared, id, w),
        ("GET", ["v1", "jobs", id, "trace"]) => return stream_trace(shared, id, w),
        ("GET", ["metrics"]) => {
            let counts = shared.ledger.counts();
            shared
                .metrics
                .gauge_set("rex_queue_depth", shared.queue.len() as f64);
            shared
                .metrics
                .gauge_set("rex_jobs_running", counts.running as f64);
            shared
                .metrics
                .gauge_set("rex_jobs_queued", counts.queued as f64);
            let body = shared.metrics.render_prometheus();
            return http::write_response(w, 200, "text/plain; version=0.0.4", &[], body.as_bytes());
        }
        (_, ["healthz" | "metrics"]) | (_, ["v1", "jobs", ..]) => 405,
        _ => 404,
    };
    shared.metrics.counter_inc("rex_http_errors_total", 1);
    let message = match status {
        405 => format!("method {method} not allowed on {path}"),
        _ => format!("no such resource {path}"),
    };
    respond(w, status, &[], &error_body(&message))
}

fn submit_job(shared: &Shared, req: &Request, w: &mut TcpStream) -> std::io::Result<()> {
    if shared.stop.load(Ordering::Acquire) {
        shared.metrics.counter_inc("rex_http_errors_total", 1);
        return respond(w, 429, &[], &error_body("server is shutting down"));
    }
    let body = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => {
            shared.metrics.counter_inc("rex_http_errors_total", 1);
            return respond(w, 400, &[], &error_body("body is not UTF-8"));
        }
    };
    let spec = match JobSpec::parse(body, shared.cfg.default_checkpoint_every) {
        Ok(spec) => spec,
        Err(e) => {
            shared.metrics.counter_inc("rex_http_errors_total", 1);
            return respond(w, 400, &[], &error_body(&e));
        }
    };

    let retry_after = shared.cfg.retry_after_secs.to_string();
    let reject = |shared: &Shared, w: &mut TcpStream| -> std::io::Result<()> {
        shared.metrics.counter_inc("rex_jobs_rejected_total", 1);
        shared.metrics.counter_inc("rex_http_errors_total", 1);
        respond(
            w,
            429,
            &[("Retry-After", retry_after.as_str())],
            &format!(
                "{{\"error\":\"queue full\",\"queue_depth\":{}}}\n",
                shared.cfg.queue_depth
            ),
        )
    };

    // optimistic pre-check so a saturated queue doesn't cost ledger IO
    if shared.queue.len() >= shared.queue.capacity() {
        return reject(shared, w);
    }
    let record = shared.ledger.create(spec);
    // persist before enqueueing: a crash between the two re-enqueues the
    // job at startup instead of losing it
    if let Err(e) = shared.ledger.commit(&record) {
        shared.ledger.discard(&record.id);
        shared.metrics.counter_inc("rex_http_errors_total", 1);
        return respond(
            w,
            500,
            &[],
            &error_body(&format!("ledger write failed: {e}")),
        );
    }
    if shared.queue.try_push(record.id.clone()).is_err() {
        shared.ledger.discard(&record.id);
        return reject(shared, w);
    }
    shared.metrics.counter_inc("rex_jobs_submitted_total", 1);
    shared
        .metrics
        .gauge_set("rex_queue_depth", shared.queue.len() as f64);
    respond(
        w,
        202,
        &[],
        &format!("{{\"id\":\"{}\",\"state\":\"queued\"}}\n", record.id),
    )
}

fn cancel_job(shared: &Shared, id: &str, w: &mut TcpStream) -> std::io::Result<()> {
    let Some(record) = shared.ledger.get(id) else {
        shared.metrics.counter_inc("rex_http_errors_total", 1);
        return respond(w, 404, &[], &error_body(&format!("no such job {id}")));
    };
    if record.state.is_terminal() {
        shared.metrics.counter_inc("rex_http_errors_total", 1);
        return respond(
            w,
            409,
            &[],
            &error_body(&format!("job {id} is already {}", record.state.name())),
        );
    }
    // set the flag first: if a worker pops the job in this window, it
    // observes the flag before training starts
    record.cancel.store(true, Ordering::Release);
    if record.state == JobState::Queued && shared.queue.remove(|qid| qid == id).is_some() {
        shared
            .ledger
            .set_state(id, JobState::Canceled, None, None)?;
        shared.metrics.counter_inc("rex_jobs_canceled_total", 1);
        shared
            .metrics
            .gauge_set("rex_queue_depth", shared.queue.len() as f64);
        return respond(w, 200, &[], "{\"state\":\"canceled\"}\n");
    }
    respond(w, 202, &[], "{\"state\":\"canceling\"}\n")
}

/// Streams a job's JSONL trace as a chunked response, following the file
/// while the job is live — `curl` sees step lines appear as the trainer
/// emits them.
fn stream_trace(shared: &Shared, id: &str, w: &mut TcpStream) -> std::io::Result<()> {
    if shared.ledger.get(id).is_none() {
        shared.metrics.counter_inc("rex_http_errors_total", 1);
        return respond(w, 404, &[], &error_body(&format!("no such job {id}")));
    }
    let path = shared.ledger.trace_path(id);
    http::write_chunked_head(w, 200, "application/x-ndjson")?;
    let mut chunks = ChunkedWriter::new(w);
    let mut offset: u64 = 0;
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        let terminal = shared.ledger.get(id).is_none_or(|r| r.state.is_terminal());
        let mut drained = true;
        if let Ok(mut file) = std::fs::File::open(&path) {
            file.seek(SeekFrom::Start(offset))?;
            loop {
                let n = file.read(&mut buf)?;
                if n == 0 {
                    break;
                }
                offset += n as u64;
                chunks.write_chunk(&buf[..n])?;
                drained = false;
            }
        }
        if terminal && drained {
            return chunks.finish();
        }
        if shared.stop.load(Ordering::Acquire) {
            return chunks.finish();
        }
        if drained {
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}
