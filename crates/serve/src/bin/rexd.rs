//! `rexd` — the standalone serving daemon. Identical to `rexctl serve`;
//! exists so the serve crate's own integration tests get a
//! `CARGO_BIN_EXE_rexd` path without building the full CLI.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("--help") {
        println!("{}", rex_serve::cli::USAGE);
        return;
    }
    if let Err(e) = rex_serve::cli::serve_cmd(&argv) {
        eprintln!("rexd: {e}");
        eprintln!("{}", rex_serve::cli::USAGE);
        std::process::exit(2);
    }
}
