//! The `rexctl serve` / `rexd` entry point: flag parsing and foreground
//! server lifecycle. Lives here (not in `rex-cli`) so the daemon binary
//! and the subcommand share one implementation without a dependency
//! cycle.

use std::collections::BTreeMap;
use std::path::PathBuf;

use crate::server::{ServeConfig, Server};

/// Usage text for the serve front end.
pub const USAGE: &str = "\
usage: rexctl serve --data-dir DIR [--addr HOST:PORT] [--queue-depth N]
                    [--workers N] [--checkpoint-every STEPS]
                    [--read-timeout-ms MS] [--retry-after-secs S]
                    [--max-retries N] [--watchdog-secs S]
                    [--threads N] [--backend scalar|simd|auto]
                    [--access-log FILE] [--profile on|off]
                    [--metrics-compat on|off]

Runs the budgeted-training job server in the foreground. Durable job
state (manifests, traces, REXSTATE1 checkpoints) lives under --data-dir;
restarting on the same directory re-enqueues unfinished jobs, which
resume from their last checkpoint. --addr defaults to 127.0.0.1:0 (an
ephemeral port, printed on startup).

Supervision: transiently failed jobs (checkpoint/trace I/O, hung runs)
are re-queued with deterministic full-jitter exponential backoff, up to
--max-retries attempts per job (jobs may override via the max_retries
spec field); --watchdog-secs S halts and retries any running job that
makes no step progress for S seconds (0, the default, disables it).
SIGTERM drains gracefully: submissions get 503 + Retry-After, /readyz
flips to 503, running jobs checkpoint at their next step boundary and
return to the queue on disk, then the process exits 0; a later start on
the same --data-dir picks every job back up.

Observability: --access-log appends one key=value line per request
(request id, method, path, status, bytes, duration, job id);
--profile on collects a phase-span profile per job and writes it to
jobs/<id>/profile.json as Chrome trace-event JSON (load in Perfetto);
--metrics-compat on re-exports the legacy *_min_seconds/*_max_seconds
timer gauges alongside the /metrics histograms for one release.";

fn parse_flags(argv: &[String]) -> Result<BTreeMap<String, String>, String> {
    let mut map = BTreeMap::new();
    let mut i = 0;
    while i < argv.len() {
        let key = argv[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {:?}", argv[i]))?;
        let value = argv
            .get(i + 1)
            .ok_or_else(|| format!("missing value for --{key}"))?;
        map.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(map)
}

/// Builds a [`ServeConfig`] from `--flag value` arguments.
///
/// # Errors
///
/// A usage message naming the offending flag.
pub fn config_from_args(argv: &[String]) -> Result<ServeConfig, String> {
    let flags = parse_flags(argv)?;
    let known = [
        "addr",
        "data-dir",
        "queue-depth",
        "workers",
        "checkpoint-every",
        "read-timeout-ms",
        "retry-after-secs",
        "max-retries",
        "watchdog-secs",
        "threads",
        "backend",
        "access-log",
        "profile",
        "metrics-compat",
    ];
    if let Some(k) = flags.keys().find(|k| !known.contains(&k.as_str())) {
        return Err(format!("unknown flag --{k}"));
    }

    if let Some(threads) = flags.get("threads") {
        let n: usize = threads
            .parse()
            .map_err(|_| format!("--threads must be an integer >= 1, got {threads:?}"))?;
        rex_pool::set_num_threads(n).map_err(|e| format!("--threads {n}: {e}"))?;
    }
    if let Some(backend) = flags.get("backend") {
        let kind = rex_tensor::BackendKind::parse(backend)
            .map_err(|e| format!("--backend {backend:?}: {e}"))?;
        rex_tensor::backend::set_backend(kind).map_err(|e| format!("--backend: {e}"))?;
    }

    let defaults = ServeConfig::default();
    let num = |key: &str, default: u64| -> Result<u64, String> {
        match flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} must be a non-negative integer, got {v:?}")),
        }
    };
    let switch = |key: &str| -> Result<bool, String> {
        match flags.get(key).map(String::as_str) {
            None | Some("off" | "false" | "0") => Ok(false),
            Some("on" | "true" | "1") => Ok(true),
            Some(v) => Err(format!("--{key} must be on|off, got {v:?}")),
        }
    };
    let cfg = ServeConfig {
        addr: flags
            .get("addr")
            .cloned()
            .unwrap_or_else(|| defaults.addr.clone()),
        data_dir: PathBuf::from(flags.get("data-dir").ok_or("missing required --data-dir")?),
        queue_depth: num("queue-depth", defaults.queue_depth as u64)?.max(1) as usize,
        workers: num("workers", defaults.workers as u64)?.max(1) as usize,
        read_timeout_ms: num("read-timeout-ms", defaults.read_timeout_ms)?,
        retry_after_secs: num("retry-after-secs", defaults.retry_after_secs)?,
        default_checkpoint_every: num("checkpoint-every", defaults.default_checkpoint_every)?,
        access_log: flags.get("access-log").map(PathBuf::from),
        profile: switch("profile")?,
        metrics_compat: switch("metrics-compat")?,
        watchdog_secs: num("watchdog-secs", defaults.watchdog_secs)?,
        default_max_retries: num("max-retries", defaults.default_max_retries)?,
    };
    Ok(cfg)
}

/// Set by the SIGTERM handler; polled by the foreground loop.
static TERM_REQUESTED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

extern "C" fn on_sigterm(_signum: i32) {
    TERM_REQUESTED.store(true, std::sync::atomic::Ordering::Release);
}

#[cfg(unix)]
fn install_sigterm_handler() {
    // Hand-declared to stay zero-dependency; SIGTERM is 15 on every
    // platform we build for.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_sigterm as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_sigterm_handler() {}

/// Runs the server in the foreground until killed or drained. Prints the
/// bound address on stdout (`rexd listening on http://ADDR`) so harnesses
/// started on port 0 can find it. On SIGTERM the server drains: it stops
/// admitting (503 + Retry-After), checkpoints running jobs at their next
/// step boundary, parks them `Queued` on disk, and returns `Ok` so the
/// process exits 0.
///
/// # Errors
///
/// Flag errors and bind/recovery failures, as a printable message.
pub fn serve_cmd(argv: &[String]) -> Result<(), String> {
    let cfg = config_from_args(argv)?;
    install_sigterm_handler();
    let server = Server::start(cfg).map_err(|e| format!("serve: {e}"))?;
    println!("rexd listening on http://{}", server.addr());
    use std::io::Write;
    let _ = std::io::stdout().flush();
    loop {
        if TERM_REQUESTED.load(std::sync::atomic::Ordering::Acquire) {
            eprintln!("rexd: SIGTERM received, draining");
            server.drain();
            eprintln!("rexd: drained, exiting");
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn config_defaults_and_overrides() {
        let cfg = config_from_args(&sv(&["--data-dir", "/tmp/x"])).unwrap();
        assert_eq!(cfg.addr, "127.0.0.1:0");
        assert_eq!(cfg.queue_depth, 16);
        assert_eq!(cfg.workers, 1);
        assert_eq!(cfg.access_log, None);
        assert!(!cfg.profile);
        assert!(!cfg.metrics_compat);

        let cfg = config_from_args(&sv(&[
            "--data-dir",
            "/tmp/x",
            "--access-log",
            "/tmp/x/access.log",
            "--profile",
            "on",
            "--metrics-compat",
            "on",
        ]))
        .unwrap();
        assert_eq!(cfg.access_log, Some(PathBuf::from("/tmp/x/access.log")));
        assert!(cfg.profile);
        assert!(cfg.metrics_compat);

        let cfg = config_from_args(&sv(&[
            "--data-dir",
            "/tmp/x",
            "--queue-depth",
            "3",
            "--workers",
            "2",
            "--checkpoint-every",
            "1",
        ]))
        .unwrap();
        assert_eq!(cfg.queue_depth, 3);
        assert_eq!(cfg.workers, 2);
        assert_eq!(cfg.default_checkpoint_every, 1);
    }

    #[test]
    fn config_rejects_bad_flags() {
        assert!(config_from_args(&sv(&[])).is_err()); // missing --data-dir
        assert!(config_from_args(&sv(&["--data-dir", "/tmp/x", "--warp", "9"])).is_err());
        assert!(config_from_args(&sv(&["--data-dir", "/tmp/x", "--workers", "two"])).is_err());
        assert!(config_from_args(&sv(&["--data-dir", "/tmp/x", "--profile", "maybe"])).is_err());
        assert!(config_from_args(&sv(&["--data-dir"])).is_err());
    }
}
