//! A minimal blocking HTTP/1.1 client for the test harnesses and the
//! serving benchmark — hand-rolled like the server, so the black-box e2e
//! suite exercises the wire format from both ends without a dependency.

use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::http::{read_chunked_body, HttpError};

/// A parsed HTTP response.
#[derive(Debug)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Decoded body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// First value of `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Performs one request on a fresh connection (`Connection: close`).
///
/// # Errors
///
/// Transport errors, timeouts, and unparseable responses.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> io::Result<HttpResponse> {
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut writer = stream.try_clone()?;
    write!(writer, "{method} {path} HTTP/1.1\r\n")?;
    write!(writer, "Host: {addr}\r\n")?;
    writer.write_all(b"Connection: close\r\n")?;
    if let Some(body) = body {
        write!(writer, "Content-Type: application/json\r\n")?;
        write!(writer, "Content-Length: {}\r\n\r\n", body.len())?;
        writer.write_all(body.as_bytes())?;
    } else {
        writer.write_all(b"\r\n")?;
    }
    writer.flush()?;
    read_response(&mut BufReader::new(stream))
}

/// Reads one response (status line, headers, body) from `r`.
///
/// # Errors
///
/// Transport errors and malformed response framing.
pub fn read_response<R: io::BufRead>(r: &mut R) -> io::Result<HttpResponse> {
    let mut status_line = String::new();
    r.read_line(&mut status_line)?;
    let status_line = status_line.trim_end();
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(invalid(format!("bad status line {status_line:?}")));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid(format!("bad status line {status_line:?}")))?;

    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        r.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
        }
    }

    let find = |name: &str| -> Option<String> {
        headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.clone())
    };
    let body = if find("transfer-encoding").is_some_and(|v| v.contains("chunked")) {
        read_chunked_body(r).map_err(|e| match e {
            HttpError::Io(e) => e,
            other => invalid(other.to_string()),
        })?
    } else if let Some(len) = find("content-length") {
        let n: usize = len
            .parse()
            .map_err(|_| invalid(format!("bad Content-Length {len:?}")))?;
        let mut body = vec![0u8; n];
        r.read_exact(&mut body)?;
        body
    } else {
        let mut body = Vec::new();
        r.read_to_end(&mut body)?;
        body
    };
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}
