//! Table-driven unit suite for the HTTP/1.1 codec — pure byte-slice
//! parsing, no sockets. Every failure mode the server maps to a status
//! code is pinned here: malformed request lines, oversized heads,
//! chunked round-trips, pipelined requests, and abrupt disconnects.

use std::io::{BufReader, Cursor};

use rex_serve::http::{
    read_chunked_body, read_request, write_chunked_head, write_response, ChunkedWriter, HttpError,
    MAX_BODY_BYTES, MAX_HEAD_BYTES,
};

fn parse(bytes: &[u8]) -> Result<rex_serve::http::Request, HttpError> {
    read_request(&mut BufReader::new(Cursor::new(bytes.to_vec())))
}

#[test]
fn parses_a_minimal_get() {
    let req = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    assert_eq!(req.method, "GET");
    assert_eq!(req.target, "/healthz");
    assert_eq!(req.path(), "/healthz");
    assert_eq!(req.query(), None);
    assert_eq!(req.version, "HTTP/1.1");
    assert_eq!(req.header("host"), Some("x"));
    assert_eq!(req.header("HOST"), Some("x"));
    assert!(req.body.is_empty());
    assert!(!req.wants_close());
}

#[test]
fn parses_query_strings_and_close_semantics() {
    let req = parse(b"GET /v1/jobs?state=done&n=3 HTTP/1.1\r\n\r\n").unwrap();
    assert_eq!(req.path(), "/v1/jobs");
    assert_eq!(req.query(), Some("state=done&n=3"));

    let close = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
    assert!(close.wants_close());
    // HTTP/1.0 defaults to close, 1.1 to keep-alive
    let old = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap();
    assert!(old.wants_close());
    let keep = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
    assert!(!keep.wants_close());
}

#[test]
fn parses_a_content_length_body() {
    let req = parse(b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world").unwrap();
    assert_eq!(req.body, b"hello world");
}

#[test]
fn bare_lf_line_endings_are_tolerated() {
    let req = parse(b"POST /x HTTP/1.1\nContent-Length: 2\n\nok").unwrap();
    assert_eq!(req.body, b"ok");
}

#[test]
fn malformed_request_lines_are_400() {
    let table: &[&[u8]] = &[
        b"GET\r\n\r\n",                                     // one token
        b"GET /\r\n\r\n",                                   // two tokens
        b"GET / HTTP/1.1 extra\r\n\r\n",                    // four tokens
        b" / HTTP/1.1\r\n\r\n",                             // empty method
        b"GET / HTTP/1.1\r\nno-colon\r\n\r\n",              // header without colon
        b"GET / HTTP/1.1\r\nbad name: x\r\n\r\n",           // space in header name
        b"GET / HTTP/1.1\r\n: empty\r\n\r\n",               // empty header name
        b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n", // unparseable length
        b"\xff\xfe / HTTP/1.1\r\n\r\n",                     // not UTF-8
    ];
    for (i, case) in table.iter().enumerate() {
        let err = parse(case).unwrap_err();
        assert!(
            matches!(err, HttpError::Malformed(_)),
            "case {i}: expected Malformed, got {err:?}"
        );
        assert_eq!(err.status(), Some((400, "Bad Request")), "case {i}");
    }
}

#[test]
fn unsupported_versions_are_505() {
    for version in ["HTTP/2.0", "HTTP/0.9", "ICY/1.1"] {
        let raw = format!("GET / {version}\r\n\r\n");
        let err = parse(raw.as_bytes()).unwrap_err();
        assert!(matches!(err, HttpError::UnsupportedVersion(_)), "{version}");
        assert_eq!(err.status().unwrap().0, 505);
    }
}

#[test]
fn oversized_heads_are_431() {
    // a single header pushing the head past the byte cap
    let mut raw = b"GET / HTTP/1.1\r\nX-Big: ".to_vec();
    raw.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES));
    raw.extend_from_slice(b"\r\n\r\n");
    let err = parse(&raw).unwrap_err();
    assert!(matches!(err, HttpError::HeadTooLarge), "{err:?}");
    assert_eq!(err.status().unwrap().0, 431);

    // too many individually-small headers
    let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
    for i in 0..200 {
        raw.extend_from_slice(format!("h{i}: v\r\n").as_bytes());
    }
    raw.extend_from_slice(b"\r\n");
    let err = parse(&raw).unwrap_err();
    assert!(matches!(err, HttpError::HeadTooLarge), "{err:?}");
}

#[test]
fn oversized_bodies_are_413() {
    let raw = format!(
        "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        MAX_BODY_BYTES + 1
    );
    let err = parse(raw.as_bytes()).unwrap_err();
    assert!(matches!(err, HttpError::BodyTooLarge), "{err:?}");
    assert_eq!(err.status().unwrap().0, 413);

    // chunked encoding cannot smuggle past the cap either
    let mut raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec();
    let chunk = vec![b'x'; 1 << 20];
    for _ in 0..5 {
        raw.extend_from_slice(format!("{:x}\r\n", chunk.len()).as_bytes());
        raw.extend_from_slice(&chunk);
        raw.extend_from_slice(b"\r\n");
    }
    raw.extend_from_slice(b"0\r\n\r\n");
    let err = parse(&raw).unwrap_err();
    assert!(matches!(err, HttpError::BodyTooLarge), "{err:?}");
}

#[test]
fn abrupt_disconnects_have_no_response() {
    // clean EOF before any bytes: idle keep-alive close
    let err = parse(b"").unwrap_err();
    assert!(matches!(err, HttpError::Closed), "{err:?}");
    assert_eq!(err.status(), None);

    let table: &[&[u8]] = &[
        b"GET / HT",                                                     // mid request line
        b"GET / HTTP/1.1\r\nHost: x",                                    // mid header
        b"GET / HTTP/1.1\r\nHost: x\r\n",                                // before blank line
        b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc",             // short body
        b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nab", // short chunk
    ];
    for (i, case) in table.iter().enumerate() {
        let err = parse(case).unwrap_err();
        assert!(
            matches!(err, HttpError::Truncated),
            "case {i}: expected Truncated, got {err:?}"
        );
        assert_eq!(err.status(), None, "case {i}");
    }
}

#[test]
fn chunked_requests_decode_with_extensions_and_trailers() {
    let raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
                4;ext=1\r\nWiki\r\n5\r\npedia\r\n0\r\nTrailer: ignored\r\n\r\n";
    let req = parse(raw).unwrap();
    assert_eq!(req.body, b"Wikipedia");
}

#[test]
fn bad_chunk_framing_is_malformed() {
    let table: &[&[u8]] = &[
        b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\nab\r\n0\r\n\r\n", // bad size
        b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n2\r\nabXX0\r\n\r\n", // missing CRLF
    ];
    for (i, case) in table.iter().enumerate() {
        let err = parse(case).unwrap_err();
        assert!(
            matches!(err, HttpError::Malformed(_)),
            "case {i}: expected Malformed, got {err:?}"
        );
    }
}

#[test]
fn chunked_writer_round_trips_through_the_decoder() {
    let mut wire = Vec::new();
    write_chunked_head(&mut wire, 200, "application/x-ndjson").unwrap();
    let mut chunks = ChunkedWriter::new(&mut wire);
    chunks.write_chunk(b"{\"ev\":\"step\"}\n").unwrap();
    chunks.write_chunk(b"").unwrap(); // skipped, must not terminate
    chunks.write_chunk(b"{\"ev\":\"run_end\"}\n").unwrap();
    chunks.finish().unwrap();

    let text = String::from_utf8(wire.clone()).unwrap();
    let body_start = text.find("\r\n\r\n").unwrap() + 4;
    let mut reader = BufReader::new(Cursor::new(wire[body_start..].to_vec()));
    let body = read_chunked_body(&mut reader).unwrap();
    assert_eq!(body, b"{\"ev\":\"step\"}\n{\"ev\":\"run_end\"}\n");
}

#[test]
fn pipelined_requests_parse_back_to_back() {
    let raw = b"POST /a HTTP/1.1\r\nContent-Length: 3\r\n\r\nonePOST /b HTTP/1.1\r\n\
                Content-Length: 3\r\n\r\ntwoGET /c HTTP/1.1\r\n\r\n";
    let mut reader = BufReader::new(Cursor::new(raw.to_vec()));
    let a = read_request(&mut reader).unwrap();
    let b = read_request(&mut reader).unwrap();
    let c = read_request(&mut reader).unwrap();
    assert_eq!((a.path(), a.body.as_slice()), ("/a", b"one".as_slice()));
    assert_eq!((b.path(), b.body.as_slice()), ("/b", b"two".as_slice()));
    assert_eq!(c.path(), "/c");
    assert!(matches!(
        read_request(&mut reader).unwrap_err(),
        HttpError::Closed
    ));
}

#[test]
fn write_response_emits_exact_framing() {
    let mut wire = Vec::new();
    write_response(
        &mut wire,
        429,
        "application/json",
        &[("Retry-After", "1")],
        b"{\"error\":\"queue full\"}\n",
    )
    .unwrap();
    let text = String::from_utf8(wire).unwrap();
    assert_eq!(
        text,
        "HTTP/1.1 429 Too Many Requests\r\nContent-Type: application/json\r\n\
         Content-Length: 23\r\nRetry-After: 1\r\n\r\n{\"error\":\"queue full\"}\n"
    );
}
