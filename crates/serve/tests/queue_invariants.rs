//! Deterministic multi-thread invariants of the bounded job queue, pinned
//! at 1, 2, 3, and 7 consumer/producer threads (the same thread-count
//! matrix the pool crate uses): FIFO admission order, the depth bound
//! under concurrent pushes, exactly-once delivery, and cancel never
//! leaking a queue slot.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};

use rex_serve::queue::{BoundedQueue, QueueFull};

/// Consumers drain a pre-filled queue; each consumer's ticket sequence
/// must be strictly increasing (pops hand out strict FIFO order under
/// one lock), and the union of all sequences must be exactly the pushed
/// set — nothing lost, nothing duplicated.
fn fifo_and_exactly_once(threads: usize) {
    const ITEMS: usize = 200;
    let queue = Arc::new(BoundedQueue::new(ITEMS));
    for i in 0..ITEMS {
        queue.try_push(i).unwrap();
    }
    queue.shutdown(); // consumers drain the backlog, then stop

    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                while let Some((ticket, item)) = queue.pop() {
                    seen.push((ticket, item));
                }
                seen
            })
        })
        .collect();

    let mut all = Vec::new();
    for handle in handles {
        let seen = handle.join().unwrap();
        // per-consumer FIFO: tickets strictly increase
        assert!(
            seen.windows(2).all(|w| w[0].0 < w[1].0),
            "consumer saw out-of-order tickets at {threads} threads"
        );
        all.extend(seen);
    }
    all.sort_unstable();
    // exactly once: every (ticket, item) pair, no gaps, no dupes
    assert_eq!(all, (0..ITEMS).map(|i| (i as u64, i)).collect::<Vec<_>>());
}

/// Producers hammer `try_push` (retrying on `QueueFull`) while consumers
/// drain. The observable depth must never exceed capacity, and every
/// admitted item must come out exactly once.
fn bounded_depth_under_contention(threads: usize) {
    const PER_PRODUCER: usize = 50;
    const CAPACITY: usize = 4;
    let queue = Arc::new(BoundedQueue::new(CAPACITY));
    let barrier = Arc::new(Barrier::new(threads + 1));
    let max_seen = Arc::new(AtomicUsize::new(0));

    let producers: Vec<_> = (0..threads)
        .map(|p| {
            let queue = Arc::clone(&queue);
            let barrier = Arc::clone(&barrier);
            let max_seen = Arc::clone(&max_seen);
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..PER_PRODUCER {
                    let item = p * PER_PRODUCER + i;
                    loop {
                        let depth = queue.len();
                        max_seen.fetch_max(depth, Ordering::Relaxed);
                        match queue.try_push(item) {
                            Ok(_) => break,
                            Err(QueueFull) => std::thread::yield_now(),
                        }
                    }
                }
            })
        })
        .collect();

    let consumer = {
        let queue = Arc::clone(&queue);
        std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Some((_, item)) = queue.pop() {
                got.push(item);
            }
            got
        })
    };

    barrier.wait();
    for producer in producers {
        producer.join().unwrap();
    }
    queue.shutdown();
    let mut got = consumer.join().unwrap();
    got.sort_unstable();
    assert_eq!(got, (0..threads * PER_PRODUCER).collect::<Vec<_>>());
    assert!(
        max_seen.load(Ordering::Relaxed) <= CAPACITY,
        "depth bound violated at {threads} producers: saw {}",
        max_seen.load(Ordering::Relaxed)
    );
}

/// Cancellers race consumers for queued items. A removed (canceled) item
/// frees its slot immediately — after every removal a push must succeed —
/// and each item is observed exactly once, by either a consumer or a
/// canceller.
fn cancel_never_leaks_a_slot(threads: usize) {
    const ROUNDS: usize = 30;
    const CAPACITY: usize = 2;
    let queue = Arc::new(BoundedQueue::new(CAPACITY));
    let taken: Arc<Mutex<Vec<usize>>> = Arc::default();

    let cancellers: Vec<_> = (0..threads)
        .map(|_| {
            let queue = Arc::clone(&queue);
            let taken = Arc::clone(&taken);
            std::thread::spawn(move || {
                // remove any even item it can find, a bounded number of times
                for _ in 0..ROUNDS {
                    if let Some(item) = queue.remove(|item| item % 2 == 0) {
                        taken.lock().unwrap().push(item);
                    }
                    std::thread::yield_now();
                }
            })
        })
        .collect();

    // the producer fills strictly within capacity, relying on removals
    // and pops to make room
    let consumer = {
        let queue = Arc::clone(&queue);
        let taken = Arc::clone(&taken);
        std::thread::spawn(move || {
            while let Some((_, item)) = queue.pop() {
                taken.lock().unwrap().push(item);
            }
        })
    };

    let total = threads * ROUNDS;
    for item in 0..total {
        loop {
            match queue.try_push(item) {
                Ok(_) => break,
                Err(QueueFull) => std::thread::yield_now(),
            }
        }
        assert!(queue.len() <= CAPACITY);
    }
    for canceller in cancellers {
        canceller.join().unwrap();
    }
    queue.shutdown();
    consumer.join().unwrap();

    let mut seen = Arc::try_unwrap(taken).unwrap().into_inner().unwrap();
    seen.sort_unstable();
    assert_eq!(seen, (0..total).collect::<Vec<_>>());
}

macro_rules! at_threads {
    ($name:ident, $f:ident, $n:expr) => {
        #[test]
        fn $name() {
            $f($n);
        }
    };
}

at_threads!(fifo_exactly_once_1_thread, fifo_and_exactly_once, 1);
at_threads!(fifo_exactly_once_2_threads, fifo_and_exactly_once, 2);
at_threads!(fifo_exactly_once_3_threads, fifo_and_exactly_once, 3);
at_threads!(fifo_exactly_once_7_threads, fifo_and_exactly_once, 7);

at_threads!(bounded_depth_1_producer, bounded_depth_under_contention, 1);
at_threads!(bounded_depth_2_producers, bounded_depth_under_contention, 2);
at_threads!(bounded_depth_3_producers, bounded_depth_under_contention, 3);
at_threads!(bounded_depth_7_producers, bounded_depth_under_contention, 7);

at_threads!(cancel_no_leak_1_thread, cancel_never_leaks_a_slot, 1);
at_threads!(cancel_no_leak_2_threads, cancel_never_leaks_a_slot, 2);
at_threads!(cancel_no_leak_3_threads, cancel_never_leaks_a_slot, 3);
at_threads!(cancel_no_leak_7_threads, cancel_never_leaks_a_slot, 7);
