//! Black-box integration tests: a real `rexd` subprocess on an ephemeral
//! port, driven over TCP by the hand-rolled client. Pins the job
//! lifecycle, queue saturation → 429 + `Retry-After`, cancel of queued
//! and running jobs, live trace streaming, protocol error responses
//! (400/404/405/408/409), and `/metrics` consistency with the job
//! ledger.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use rex_serve::client::{request, HttpResponse};
use rex_telemetry::json::{parse_object, Value};

const TIMEOUT: Duration = Duration::from_secs(10);

struct Daemon {
    child: Child,
    addr: SocketAddr,
    data_dir: PathBuf,
    /// Leave the data dir behind on drop (restart-on-same-dir tests).
    keep_data: bool,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        if !self.keep_data {
            let _ = std::fs::remove_dir_all(&self.data_dir);
        }
    }
}

/// Starts `rexd` on an ephemeral port with a fresh data dir, parsing the
/// bound address off its startup line.
fn start_daemon(tag: &str, extra_args: &[&str], env: &[(&str, &str)]) -> Daemon {
    let data_dir = std::env::temp_dir().join(format!("rex_e2e_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    start_daemon_at(&data_dir, false, extra_args, env)
}

/// Starts `rexd` on an existing (possibly job-laden) data dir, which is
/// preserved across the daemon's drop so another life can pick it up.
fn start_daemon_at(
    data_dir: &Path,
    keep_data: bool,
    extra_args: &[&str],
    env: &[(&str, &str)],
) -> Daemon {
    let data_dir = data_dir.to_owned();
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_rexd"));
    cmd.arg("--data-dir")
        .arg(&data_dir)
        .args(["--addr", "127.0.0.1:0"])
        .args(extra_args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    for (key, value) in env {
        cmd.env(key, value);
    }
    let mut child = cmd.spawn().expect("spawn rexd");
    let stdout = child.stdout.take().expect("rexd stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("rexd startup line");
    let addr: SocketAddr = line
        .trim()
        .strip_prefix("rexd listening on http://")
        .unwrap_or_else(|| panic!("unexpected startup line {line:?}"))
        .parse()
        .expect("parse rexd address");
    Daemon {
        child,
        addr,
        data_dir,
        keep_data,
    }
}

fn get(daemon: &Daemon, path: &str) -> HttpResponse {
    request(daemon.addr, "GET", path, None, TIMEOUT).expect("GET")
}

fn post(daemon: &Daemon, path: &str, body: &str) -> HttpResponse {
    request(daemon.addr, "POST", path, Some(body), TIMEOUT).expect("POST")
}

fn delete(daemon: &Daemon, path: &str) -> HttpResponse {
    request(daemon.addr, "DELETE", path, None, TIMEOUT).expect("DELETE")
}

fn json_of(resp: &HttpResponse) -> BTreeMap<String, Value> {
    parse_object(&resp.text()).unwrap_or_else(|e| panic!("bad JSON {:?}: {e}", resp.text()))
}

fn submit(daemon: &Daemon, body: &str) -> String {
    let resp = post(daemon, "/v1/jobs", body);
    assert_eq!(resp.status, 202, "{}", resp.text());
    json_of(&resp)["id"].as_str().expect("job id").to_owned()
}

/// Polls a job until it reaches a terminal state.
fn wait_terminal(daemon: &Daemon, id: &str, within: Duration) -> BTreeMap<String, Value> {
    let deadline = Instant::now() + within;
    loop {
        let resp = get(daemon, &format!("/v1/jobs/{id}"));
        assert_eq!(resp.status, 200, "{}", resp.text());
        let record = json_of(&resp);
        let state = record["state"].as_str().unwrap().to_owned();
        if ["done", "failed", "canceled"].contains(&state.as_str()) {
            return record;
        }
        assert!(
            Instant::now() < deadline,
            "job {id} stuck in {state} past {within:?}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn wait_state(daemon: &Daemon, id: &str, state: &str, within: Duration) {
    let deadline = Instant::now() + within;
    loop {
        let record = json_of(&get(daemon, &format!("/v1/jobs/{id}")));
        if record["state"].as_str() == Some(state) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "job {id} never reached {state} (at {:?})",
            record["state"]
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Parses a Prometheus text body into name → value (labels unused here).
fn prometheus_values(body: &str) -> BTreeMap<String, f64> {
    body.lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
        .filter_map(|l| {
            let (name, value) = l.rsplit_once(' ')?;
            Some((name.to_owned(), value.parse().ok()?))
        })
        .collect()
}

const QUICK_JOB: &str =
    r#"{"setting":"digits-mlp","budget":25,"schedule":"rex","optimizer":"sgdm","seed":7}"#;
/// A job slowed to ~50ms per step by a `slow-io-on-write` fault on every
/// checkpoint write (checkpoint_every 1 → one write per step), so tests
/// can observe and cancel it mid-run.
const SLOW_JOB: &str = r#"{"setting":"digits-mlp","budget":100,"schedule":"rex","optimizer":"sgdm","seed":7,"checkpoint_every":1}"#;
const SLOW_FAULT: (&str, &str) = ("REX_FAULTS", "slow-io-on-write=state:0:50");

#[test]
fn job_lifecycle_end_to_end() {
    let daemon = start_daemon("lifecycle", &[], &[]);

    let health = get(&daemon, "/healthz");
    assert_eq!(health.status, 200);
    let health = json_of(&health);
    assert_eq!(health["status"].as_str(), Some("ok"));
    assert_eq!(health["queue_depth"].as_u64(), Some(0));
    assert_eq!(health["jobs_running"].as_u64(), Some(0));
    assert!(health["uptime_seconds"].as_u64().is_some());

    let id = submit(&daemon, QUICK_JOB);
    assert_eq!(id, "job-000001");
    let record = wait_terminal(&daemon, &id, Duration::from_secs(60));
    assert_eq!(record["state"].as_str(), Some("done"), "{record:?}");
    let metric = record["metric"].as_f64().expect("metric");
    assert!((0.0..=100.0).contains(&metric), "{metric}");
    // spec round-trips through the record
    assert_eq!(record["setting"].as_str(), Some("digits-mlp"));
    assert_eq!(record["budget"].as_u64(), Some(25));
    assert_eq!(record["seed"].as_u64(), Some(7));

    // the listing shows the same record as one JSONL line
    let listing = get(&daemon, "/v1/jobs");
    assert_eq!(listing.status, 200);
    let listing_text = listing.text();
    let lines: Vec<&str> = listing_text.lines().map(str::trim).collect();
    assert_eq!(lines.len(), 1);
    let listed = parse_object(lines[0]).unwrap();
    assert_eq!(listed["id"].as_str(), Some(id.as_str()));
    assert_eq!(listed["state"].as_str(), Some("done"));

    // the streamed trace equals the on-disk trace byte for byte
    let streamed = get(&daemon, &format!("/v1/jobs/{id}/trace"));
    assert_eq!(streamed.status, 200);
    let on_disk =
        std::fs::read(daemon.data_dir.join("jobs").join(&id).join("trace.jsonl")).unwrap();
    assert_eq!(streamed.body, on_disk);
    // 25% of 8 epochs = 2 epochs × 8 steps; trace ends with run_end
    let text = streamed.text();
    assert_eq!(text.matches("\"ev\":\"step\"").count(), 16);
    assert!(text.lines().last().unwrap().contains("run_end"));
}

#[test]
fn saturated_queue_answers_429_with_retry_after() {
    let daemon = start_daemon(
        "backpressure",
        &[
            "--queue-depth",
            "1",
            "--workers",
            "1",
            "--retry-after-secs",
            "7",
        ],
        &[SLOW_FAULT],
    );

    // one running (slow), one queued (fills the depth-1 queue)
    let running = submit(&daemon, SLOW_JOB);
    wait_state(&daemon, &running, "running", Duration::from_secs(20));
    let queued = submit(&daemon, SLOW_JOB);

    let rejected = post(&daemon, "/v1/jobs", SLOW_JOB);
    assert_eq!(rejected.status, 429, "{}", rejected.text());
    assert_eq!(rejected.header("retry-after"), Some("7"));
    let body = json_of(&rejected);
    assert_eq!(body["error"].as_str(), Some("queue full"));

    // a rejected submission leaves no ledger entry behind
    assert_eq!(get(&daemon, "/v1/jobs").text().lines().count(), 2);

    // backpressure is transient: cancel the queued job, the slot frees up
    assert_eq!(delete(&daemon, &format!("/v1/jobs/{queued}")).status, 200);
    let resub = post(&daemon, "/v1/jobs", SLOW_JOB);
    assert_eq!(resub.status, 202, "{}", resub.text());

    let metrics = prometheus_values(&get(&daemon, "/metrics").text());
    assert_eq!(metrics["rex_jobs_rejected_total"], 1.0);
    assert_eq!(metrics["rex_jobs_submitted_total"], 3.0);
}

#[test]
fn cancel_queued_and_running_jobs() {
    let daemon = start_daemon("cancel", &["--workers", "1"], &[SLOW_FAULT]);

    let running = submit(&daemon, SLOW_JOB);
    let queued = submit(&daemon, SLOW_JOB);
    wait_state(&daemon, &running, "running", Duration::from_secs(20));

    // queued: canceled synchronously, before ever running
    let resp = delete(&daemon, &format!("/v1/jobs/{queued}"));
    assert_eq!(resp.status, 200);
    assert_eq!(json_of(&resp)["state"].as_str(), Some("canceled"));
    assert_eq!(
        json_of(&get(&daemon, &format!("/v1/jobs/{queued}")))["state"].as_str(),
        Some("canceled")
    );

    // running: cooperative — 202 now, canceled at the next step boundary
    let resp = delete(&daemon, &format!("/v1/jobs/{running}"));
    assert_eq!(resp.status, 202);
    assert_eq!(json_of(&resp)["state"].as_str(), Some("canceling"));
    let record = wait_terminal(&daemon, &running, Duration::from_secs(30));
    assert_eq!(record["state"].as_str(), Some("canceled"), "{record:?}");
    // it stopped early: the trace has fewer than the full 64 steps
    let trace = get(&daemon, &format!("/v1/jobs/{running}/trace")).text();
    let steps = trace.matches("\"ev\":\"step\"").count();
    assert!(
        (1..64).contains(&steps),
        "expected a partial run, got {steps} steps"
    );

    // canceling a terminal job is idempotent success, not a conflict —
    // a client retrying a DELETE whose response was lost must not error
    let resp = delete(&daemon, &format!("/v1/jobs/{running}"));
    assert_eq!(resp.status, 200);
    assert_eq!(json_of(&resp)["state"].as_str(), Some("canceled"));
}

#[test]
fn protocol_errors_map_to_statuses() {
    let daemon = start_daemon("protocol", &["--read-timeout-ms", "150"], &[]);

    // 400: bad JSON, unknown setting, out-of-range budget
    for body in [
        "not json at all",
        r#"{"setting":"warp-drive","budget":10}"#,
        r#"{"setting":"digits-mlp","budget":0}"#,
        r#"{"setting":"digits-mlp"}"#,
    ] {
        let resp = post(&daemon, "/v1/jobs", body);
        assert_eq!(resp.status, 400, "body {body:?} -> {}", resp.text());
    }

    // 404: unknown routes and unknown job ids
    assert_eq!(get(&daemon, "/nope").status, 404);
    assert_eq!(get(&daemon, "/v1/jobs/job-999999").status, 404);
    assert_eq!(delete(&daemon, "/v1/jobs/job-999999").status, 404);
    assert_eq!(get(&daemon, "/v1/jobs/job-999999/trace").status, 404);

    // 405: wrong method on a known route
    assert_eq!(delete(&daemon, "/metrics").status, 405);
    assert_eq!(post(&daemon, "/healthz", "{}").status, 405);

    // 408: a client that stalls mid-request is timed out
    let mut slow = TcpStream::connect(daemon.addr).unwrap();
    slow.write_all(b"POST /v1/jobs HT").unwrap();
    slow.flush().unwrap();
    slow.set_read_timeout(Some(TIMEOUT)).unwrap();
    let resp = rex_serve::client::read_response(&mut BufReader::new(slow)).unwrap();
    assert_eq!(resp.status, 408);
}

#[test]
fn metrics_agree_with_the_ledger() {
    let daemon = start_daemon("metrics", &["--workers", "2"], &[]);

    let ids: Vec<String> = (0..3)
        .map(|seed| {
            submit(
                &daemon,
                &format!(r#"{{"setting":"digits-mlp","budget":25,"seed":{seed}}}"#),
            )
        })
        .collect();
    for id in &ids {
        let record = wait_terminal(&daemon, id, Duration::from_secs(60));
        assert_eq!(record["state"].as_str(), Some("done"), "{record:?}");
    }

    let metrics = prometheus_values(&get(&daemon, "/metrics").text());
    assert_eq!(metrics["rex_jobs_submitted_total"], 3.0);
    assert_eq!(metrics["rex_jobs_completed_total"], 3.0);
    assert_eq!(
        metrics.get("rex_jobs_failed_total").copied().unwrap_or(0.0),
        0.0
    );
    assert_eq!(metrics["rex_queue_depth"], 0.0);
    assert_eq!(metrics["rex_jobs_running"], 0.0);
    // the trainer folded per-step telemetry into the registry:
    // 3 jobs × 16 steps
    assert_eq!(metrics["rex_train_steps_total"], 48.0);
    assert_eq!(metrics["rex_train_runs_total"], 3.0);
    // one duration observation per finished job
    assert_eq!(metrics["rex_job_duration_seconds_count"], 3.0);

    // ledger agrees with both the metrics and the per-job records
    let listing = get(&daemon, "/v1/jobs").text();
    let done = listing
        .lines()
        .filter(|l| parse_object(l).unwrap()["state"].as_str() == Some("done"))
        .count();
    assert_eq!(done, 3);
}

/// Observability surfaces: request ids on every response and in the job
/// manifest, access-log lines correlating requests with jobs, and the
/// per-job span profile written when the server runs with `--profile on`.
#[test]
fn access_log_request_ids_and_job_profiles() {
    // outside the daemon's data dir, which Drop removes before we read it
    let log_path =
        std::env::temp_dir().join(format!("rex_e2e_obs_access_{}.log", std::process::id()));
    let _ = std::fs::remove_file(&log_path);
    let daemon = start_daemon(
        "obs",
        &[
            "--access-log",
            log_path.to_str().unwrap(),
            "--profile",
            "on",
        ],
        &[],
    );

    let resp = post(&daemon, "/v1/jobs", QUICK_JOB);
    assert_eq!(resp.status, 202, "{}", resp.text());
    let req_id = resp.header("x-request-id").expect("request id").to_owned();
    let id = json_of(&resp)["id"].as_str().expect("job id").to_owned();
    wait_terminal(&daemon, &id, Duration::from_secs(60));

    // the submitting request's id landed in the job manifest
    let record = json_of(&get(&daemon, &format!("/v1/jobs/{id}")));
    assert_eq!(record["request_id"].as_str(), Some(req_id.as_str()));

    // every response carries an id, even error responses
    assert!(get(&daemon, "/healthz").header("x-request-id").is_some());
    assert!(get(&daemon, "/no/such/path")
        .header("x-request-id")
        .is_some());

    // the worker wrote a Chrome-trace profile next to the job's trace
    let profile = daemon.data_dir.join("jobs").join(&id).join("profile.json");
    let profile_text = std::fs::read_to_string(&profile).expect("profile.json");
    assert!(
        profile_text.starts_with("{\"traceEvents\":["),
        "{profile_text:?}"
    );
    assert!(profile_text.contains("\"name\":\"job\""));
    // ...and the profiled run's trace is still byte-identical to the
    // unprofiled run of the same spec (spans never touch the Recorder)
    let plain = start_daemon("obs_plain", &[], &[]);
    let plain_id = submit(&plain, QUICK_JOB);
    wait_terminal(&plain, &plain_id, Duration::from_secs(60));
    let profiled_trace =
        std::fs::read(daemon.data_dir.join("jobs").join(&id).join("trace.jsonl")).unwrap();
    let plain_trace = std::fs::read(
        plain
            .data_dir
            .join("jobs")
            .join(&plain_id)
            .join("trace.jsonl"),
    )
    .unwrap();
    assert_eq!(profiled_trace, plain_trace);

    // the access log has one line per request, keyed by request id
    drop(daemon); // flush + stop before reading the log
    let log = std::fs::read_to_string(&log_path).expect("access log");
    let submit_line = log
        .lines()
        .find(|l| l.contains(&format!("req={req_id} ")))
        .unwrap_or_else(|| panic!("no access-log line for {req_id}: {log}"));
    assert!(submit_line.contains("method=POST"), "{submit_line}");
    assert!(submit_line.contains("path=/v1/jobs"), "{submit_line}");
    assert!(submit_line.contains("status=202"), "{submit_line}");
    assert!(submit_line.contains(&format!("job={id}")), "{submit_line}");
    assert!(log.lines().all(|l| l.contains("dur_us=")), "{log}");
    let _ = std::fs::remove_file(&log_path);
}

/// Live streaming: a trace reader attached while the job runs sees the
/// full trace without waiting for completion polling, and the stream
/// terminates once the job is done.
#[test]
fn trace_streams_while_the_job_runs() {
    let daemon = start_daemon("stream", &[], &[SLOW_FAULT]);
    let id = submit(&daemon, SLOW_JOB);
    wait_state(&daemon, &id, "running", Duration::from_secs(20));

    // attach mid-run; request() blocks until the chunked stream finishes
    let streamed = get(&daemon, &format!("/v1/jobs/{id}/trace"));
    assert_eq!(streamed.status, 200);
    let record = json_of(&get(&daemon, &format!("/v1/jobs/{id}")));
    assert_eq!(record["state"].as_str(), Some("done"));
    let text = streamed.text();
    assert_eq!(text.matches("\"ev\":\"step\"").count(), 64);
    assert!(text.lines().last().unwrap().contains("run_end"));
}

/// Path sanity for `CARGO_BIN_EXE_rexd` usage elsewhere.
#[test]
fn rexd_help_prints_usage() {
    let out = Command::new(env!("CARGO_BIN_EXE_rexd"))
        .arg("--help")
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("rexctl serve"));
    // missing --data-dir is a usage error, exit code 2
    let out = Command::new(env!("CARGO_BIN_EXE_rexd")).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

/// Keep `Path` in the imports honest (helper for future tests reading
/// job dirs directly).
#[allow(dead_code)]
fn job_dir(daemon: &Daemon, id: &str) -> PathBuf {
    Path::new(&daemon.data_dir).join("jobs").join(id)
}

/// A small checkpointed job for the supervision tests: budget 25 of
/// digits-mlp is 16 steps, one checkpoint write per step.
const SUPERVISED_JOB: &str = r#"{"setting":"digits-mlp","budget":25,"schedule":"rex","optimizer":"sgdm","seed":7,"checkpoint_every":1}"#;

/// A transient failure (injected I/O error on the third checkpoint write)
/// is retried with backoff instead of failing the job: the second attempt
/// resumes from the surviving checkpoint and completes, with the retry
/// count surfaced in the manifest and on the wire.
#[test]
fn transient_io_failure_is_retried_and_the_job_completes() {
    let daemon = start_daemon(
        "retry",
        &["--workers", "1"],
        &[("REX_FAULTS", "io-err-on-write=state:3")],
    );
    let id = submit(&daemon, SUPERVISED_JOB);
    let record = wait_terminal(&daemon, &id, Duration::from_secs(60));
    assert_eq!(record["state"].as_str(), Some("done"), "{record:?}");
    assert_eq!(record["retries"].as_u64(), Some(1), "{record:?}");
    assert_eq!(record["max_retries"].as_u64(), Some(3), "{record:?}");
    let metrics = prometheus_values(&get(&daemon, "/metrics").text());
    assert_eq!(metrics["rex_jobs_retried_total"], 1.0);
    assert_eq!(
        metrics.get("rex_jobs_failed_total").copied().unwrap_or(0.0),
        0.0
    );
}

/// The watchdog halts a job whose step counter stops moving (here: a 4 s
/// stall injected into one checkpoint write, against a 1 s watchdog) and
/// the supervisor retries it; the retry resumes and completes.
#[test]
fn watchdog_halts_a_stalled_job_and_the_retry_completes() {
    let daemon = start_daemon(
        "watchdog",
        &["--workers", "1", "--watchdog-secs", "1"],
        &[("REX_FAULTS", "slow-io-on-write=state:4:4000")],
    );
    let id = submit(&daemon, SUPERVISED_JOB);
    let record = wait_terminal(&daemon, &id, Duration::from_secs(60));
    assert_eq!(record["state"].as_str(), Some("done"), "{record:?}");
    assert_eq!(record["retries"].as_u64(), Some(1), "{record:?}");
    let metrics = prometheus_values(&get(&daemon, "/metrics").text());
    assert_eq!(metrics["rex_jobs_watchdog_total"], 1.0);
    assert_eq!(metrics["rex_jobs_retried_total"], 1.0);
}

/// SIGTERM drains gracefully: admission answers 503 + Retry-After (not a
/// connection reset), `/readyz` flips to 503 while `/healthz` stays 200,
/// the running job checkpoints and returns to `Queued` on disk, the
/// process exits 0, and a later daemon life on the same data dir resumes
/// the job to a trace byte-identical to a never-drained run's.
#[test]
fn sigterm_drains_and_a_restart_resumes_with_identical_trace() {
    let data_dir = std::env::temp_dir().join(format!("rex_e2e_drain_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let mut daemon = start_daemon_at(
        &data_dir,
        true,
        &["--workers", "1"],
        // 500 ms per checkpoint write: a wide-open drain window
        &[("REX_FAULTS", "slow-io-on-write=state:0:500")],
    );
    assert_eq!(get(&daemon, "/readyz").status, 200);

    let id = submit(&daemon, SUPERVISED_JOB);
    wait_state(&daemon, &id, "running", Duration::from_secs(20));

    let pid = daemon.child.id().to_string();
    assert!(Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .unwrap()
        .success());
    // Inside the drain window (the current step's 500 ms write must
    // finish before the trainer can halt), admission is 503 with a
    // Retry-After, and readiness — unlike liveness — reports draining.
    std::thread::sleep(Duration::from_millis(150));
    let rejected = post(&daemon, "/v1/jobs", SUPERVISED_JOB);
    assert_eq!(rejected.status, 503, "{}", rejected.text());
    assert!(rejected.header("retry-after").is_some());
    let ready = get(&daemon, "/readyz");
    assert_eq!(ready.status, 503);
    assert!(ready.header("retry-after").is_some());
    assert_eq!(get(&daemon, "/healthz").status, 200);

    let status = daemon.child.wait().unwrap();
    assert_eq!(status.code(), Some(0), "drain must exit cleanly");
    drop(daemon);

    // the drained job is parked Queued on disk, not canceled
    let manifest =
        std::fs::read_to_string(data_dir.join("jobs").join(&id).join("job.json")).unwrap();
    assert!(manifest.contains("\"state\":\"queued\""), "{manifest}");

    // a second life resumes it to completion (no fault this time)...
    let daemon2 = start_daemon_at(&data_dir, true, &["--workers", "1"], &[]);
    let record = wait_terminal(&daemon2, &id, Duration::from_secs(60));
    assert_eq!(record["state"].as_str(), Some("done"), "{record:?}");
    let resumed_trace = std::fs::read(data_dir.join("jobs").join(&id).join("trace.jsonl")).unwrap();
    drop(daemon2);

    // ...byte-identical to the same spec run without any drain
    let clean = start_daemon("drain_clean", &[], &[]);
    let clean_id = submit(&clean, SUPERVISED_JOB);
    wait_terminal(&clean, &clean_id, Duration::from_secs(60));
    let clean_trace = std::fs::read(
        clean
            .data_dir
            .join("jobs")
            .join(&clean_id)
            .join("trace.jsonl"),
    )
    .unwrap();
    assert_eq!(resumed_trace, clean_trace);
    let _ = std::fs::remove_dir_all(&data_dir);
}
