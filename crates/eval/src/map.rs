//! PASCAL-VOC-style mean average precision for the detection setting.

/// A scored, classified, box-valued prediction for one image.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Which image of the evaluation set this belongs to.
    pub image: usize,
    /// Predicted class.
    pub class: usize,
    /// Confidence score.
    pub score: f32,
    /// Box centre/size in `[0,1]` image coordinates.
    pub cxcywh: [f32; 4],
}

/// A ground-truth object for one image.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroundTruth {
    /// Which image of the evaluation set this belongs to.
    pub image: usize,
    /// True class.
    pub class: usize,
    /// Box centre/size in `[0,1]` image coordinates.
    pub cxcywh: [f32; 4],
}

/// Intersection-over-union of two `(cx, cy, w, h)` boxes.
pub fn iou(a: [f32; 4], b: [f32; 4]) -> f32 {
    let to_corners = |c: [f32; 4]| {
        (
            c[0] - c[2] / 2.0,
            c[1] - c[3] / 2.0,
            c[0] + c[2] / 2.0,
            c[1] + c[3] / 2.0,
        )
    };
    let (ax0, ay0, ax1, ay1) = to_corners(a);
    let (bx0, by0, bx1, by1) = to_corners(b);
    let ix = (ax1.min(bx1) - ax0.max(bx0)).max(0.0);
    let iy = (ay1.min(by1) - ay0.max(by0)).max(0.0);
    let inter = ix * iy;
    let union = (ax1 - ax0) * (ay1 - ay0) + (bx1 - bx0) * (by1 - by0) - inter;
    if union <= 0.0 {
        0.0
    } else {
        inter / union
    }
}

/// Average precision for one class at the given IoU threshold, using
/// all-point interpolation (area under the precision-recall curve).
fn average_precision(
    mut preds: Vec<Prediction>,
    gts: &[GroundTruth],
    iou_threshold: f32,
) -> Option<f64> {
    if gts.is_empty() {
        return None; // class absent from the evaluation set
    }
    preds.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("finite scores"));
    let mut matched = vec![false; gts.len()];
    let mut tp = Vec::with_capacity(preds.len());
    for p in &preds {
        // best unmatched ground truth in the same image
        let mut best: Option<(usize, f32)> = None;
        for (gi, gt) in gts.iter().enumerate() {
            if gt.image != p.image || matched[gi] {
                continue;
            }
            let i = iou(p.cxcywh, gt.cxcywh);
            if i >= iou_threshold && best.map(|(_, bi)| i > bi).unwrap_or(true) {
                best = Some((gi, i));
            }
        }
        match best {
            Some((gi, _)) => {
                matched[gi] = true;
                tp.push(true);
            }
            None => tp.push(false),
        }
    }
    // precision-recall sweep
    let total = gts.len() as f64;
    let mut cum_tp = 0.0;
    let mut cum_fp = 0.0;
    let mut points: Vec<(f64, f64)> = Vec::with_capacity(tp.len());
    for &hit in &tp {
        if hit {
            cum_tp += 1.0;
        } else {
            cum_fp += 1.0;
        }
        points.push((cum_tp / total, cum_tp / (cum_tp + cum_fp)));
    }
    // all-point interpolation: for each recall step take max precision to
    // the right
    let mut ap = 0.0;
    let mut prev_recall = 0.0;
    for i in 0..points.len() {
        let (r, _) = points[i];
        if r > prev_recall {
            let max_p = points[i..].iter().map(|&(_, p)| p).fold(0.0f64, f64::max);
            ap += (r - prev_recall) * max_p;
            prev_recall = r;
        }
    }
    Some(ap)
}

/// Mean average precision (%) over all classes present in the ground
/// truth, at the given IoU threshold (0.5 for the paper's VOC protocol).
pub fn mean_average_precision(
    preds: &[Prediction],
    gts: &[GroundTruth],
    num_classes: usize,
    iou_threshold: f32,
) -> f64 {
    let mut aps = Vec::new();
    for class in 0..num_classes {
        let class_preds: Vec<Prediction> =
            preds.iter().filter(|p| p.class == class).copied().collect();
        let class_gts: Vec<GroundTruth> =
            gts.iter().filter(|g| g.class == class).copied().collect();
        if let Some(ap) = average_precision(class_preds, &class_gts, iou_threshold) {
            aps.push(ap);
        }
    }
    if aps.is_empty() {
        0.0
    } else {
        100.0 * aps.iter().sum::<f64>() / aps.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iou_identical_boxes_is_one() {
        let b = [0.5, 0.5, 0.2, 0.2];
        assert!((iou(b, b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn iou_disjoint_is_zero() {
        assert_eq!(iou([0.2, 0.2, 0.1, 0.1], [0.8, 0.8, 0.1, 0.1]), 0.0);
    }

    #[test]
    fn iou_half_overlap() {
        // two unit-width boxes offset by half a width: IoU = 1/3
        let a = [0.5, 0.5, 0.2, 0.2];
        let b = [0.6, 0.5, 0.2, 0.2];
        assert!((iou(a, b) - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn perfect_predictions_give_map_100() {
        let gts = vec![
            GroundTruth {
                image: 0,
                class: 0,
                cxcywh: [0.3, 0.3, 0.2, 0.2],
            },
            GroundTruth {
                image: 1,
                class: 1,
                cxcywh: [0.7, 0.7, 0.2, 0.2],
            },
        ];
        let preds: Vec<Prediction> = gts
            .iter()
            .map(|g| Prediction {
                image: g.image,
                class: g.class,
                score: 0.9,
                cxcywh: g.cxcywh,
            })
            .collect();
        let map = mean_average_precision(&preds, &gts, 2, 0.5);
        assert!((map - 100.0).abs() < 1e-9);
    }

    #[test]
    fn misclassified_boxes_score_zero() {
        let gts = vec![GroundTruth {
            image: 0,
            class: 0,
            cxcywh: [0.5, 0.5, 0.2, 0.2],
        }];
        let preds = vec![Prediction {
            image: 0,
            class: 1, // wrong class
            score: 0.9,
            cxcywh: [0.5, 0.5, 0.2, 0.2],
        }];
        assert_eq!(mean_average_precision(&preds, &gts, 2, 0.5), 0.0);
    }

    #[test]
    fn low_scored_false_positives_hurt_less_than_high_scored() {
        let gts = vec![GroundTruth {
            image: 0,
            class: 0,
            cxcywh: [0.5, 0.5, 0.2, 0.2],
        }];
        let hit = Prediction {
            image: 0,
            class: 0,
            score: 0.8,
            cxcywh: [0.5, 0.5, 0.2, 0.2],
        };
        let fp_high = Prediction {
            image: 0,
            class: 0,
            score: 0.9,
            cxcywh: [0.1, 0.1, 0.05, 0.05],
        };
        let fp_low = Prediction {
            score: 0.1,
            ..fp_high
        };
        let map_fp_first = mean_average_precision(&[hit, fp_high], &gts, 1, 0.5);
        let map_fp_last = mean_average_precision(&[hit, fp_low], &gts, 1, 0.5);
        assert!(map_fp_last > map_fp_first);
        assert!((map_fp_last - 100.0).abs() < 1e-9, "trailing FP is free");
        assert!((map_fp_first - 50.0).abs() < 1e-9);
    }

    #[test]
    fn duplicate_detections_count_once() {
        let gts = vec![GroundTruth {
            image: 0,
            class: 0,
            cxcywh: [0.5, 0.5, 0.2, 0.2],
        }];
        let p = Prediction {
            image: 0,
            class: 0,
            score: 0.9,
            cxcywh: [0.5, 0.5, 0.2, 0.2],
        };
        let dup = Prediction { score: 0.8, ..p };
        let map = mean_average_precision(&[p, dup], &gts, 1, 0.5);
        // second detection is a false positive but comes after full recall
        assert!((map - 100.0).abs() < 1e-9);
    }

    #[test]
    fn absent_class_excluded_from_mean() {
        let gts = vec![GroundTruth {
            image: 0,
            class: 0,
            cxcywh: [0.5, 0.5, 0.2, 0.2],
        }];
        let preds = vec![Prediction {
            image: 0,
            class: 0,
            score: 0.9,
            cxcywh: [0.5, 0.5, 0.2, 0.2],
        }];
        // class 1 has no ground truth; mAP over {0} only
        assert!((mean_average_precision(&preds, &gts, 5, 0.5) - 100.0).abs() < 1e-9);
    }
}
