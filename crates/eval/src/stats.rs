//! Basic statistics over trial results.

/// Mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (n−1 denominator); 0 for fewer than two
/// samples. This matches the `±` columns of the paper's tables, which are
/// computed over three trials.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// A `mean ± std` pair with its sample count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Mean over trials.
    pub mean: f64,
    /// Sample standard deviation over trials.
    pub std: f64,
    /// Number of trials.
    pub n: usize,
}

impl Summary {
    /// Summarises a set of trial results.
    pub fn of(xs: &[f64]) -> Summary {
        Summary {
            mean: mean(xs),
            std: std_dev(xs),
            n: xs.len(),
        }
    }
}

impl std::fmt::Display for Summary {
    /// Formats as the paper does: `12.86 ± .27`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.n > 1 {
            write!(f, "{:.2} ± {:.2}", self.mean, self.std)
        } else {
            write!(f, "{:.2}", self.mean)
        }
    }
}

/// Classification error (%) of predictions vs labels.
///
/// # Panics
///
/// Panics if lengths differ or the input is empty.
pub fn error_rate(predictions: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    assert!(!labels.is_empty(), "empty evaluation set");
    let wrong = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p != l)
        .count();
    100.0 * wrong as f64 / labels.len() as f64
}

/// Accuracy (%) — `100 − error_rate`, provided for the GLUE-style tables
/// which report scores where higher is better.
///
/// # Panics
///
/// As [`error_rate`].
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f64 {
    100.0 - error_rate(predictions, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_known_values() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // sample std of this classic set is ~2.138
        assert!((std_dev(&xs) - 2.13809).abs() < 1e-4);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[3.0]), 0.0);
    }

    #[test]
    fn summary_formats_like_paper() {
        let s = Summary::of(&[12.5, 13.0, 12.7]);
        let txt = format!("{s}");
        assert!(txt.contains("±"), "{txt}");
        let single = Summary::of(&[12.5]);
        assert_eq!(format!("{single}"), "12.50");
    }

    #[test]
    fn error_and_accuracy() {
        let pred = [0usize, 1, 2, 2];
        let gold = [0usize, 1, 1, 2];
        assert!((error_rate(&pred, &gold) - 25.0).abs() < 1e-12);
        assert!((accuracy(&pred, &gold) - 75.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn error_rate_length_checked() {
        let _ = error_rate(&[0], &[0, 1]);
    }
}

/// A confusion matrix over `k` classes: `counts[true][predicted]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Builds the matrix from parallel prediction/label slices.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or any index is ≥ `num_classes`.
    pub fn new(predictions: &[usize], labels: &[usize], num_classes: usize) -> Self {
        assert_eq!(predictions.len(), labels.len(), "length mismatch");
        let mut counts = vec![vec![0usize; num_classes]; num_classes];
        for (&p, &l) in predictions.iter().zip(labels) {
            assert!(
                p < num_classes && l < num_classes,
                "class index out of range"
            );
            counts[l][p] += 1;
        }
        ConfusionMatrix { counts }
    }

    /// Count of samples with true class `t` predicted as `p`.
    pub fn count(&self, t: usize, p: usize) -> usize {
        self.counts[t][p]
    }

    /// Per-class recall (%) — diagonal over row sums; `None` for classes
    /// absent from the labels.
    pub fn per_class_recall(&self) -> Vec<Option<f64>> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, row)| {
                let total: usize = row.iter().sum();
                if total == 0 {
                    None
                } else {
                    Some(100.0 * self.counts[i][i] as f64 / total as f64)
                }
            })
            .collect()
    }

    /// Overall accuracy (%).
    pub fn accuracy(&self) -> f64 {
        let correct: usize = (0..self.counts.len()).map(|i| self.counts[i][i]).sum();
        let total: usize = self.counts.iter().flatten().sum();
        if total == 0 {
            0.0
        } else {
            100.0 * correct as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod confusion_tests {
    use super::*;

    #[test]
    fn confusion_counts_and_accuracy() {
        let pred = [0usize, 1, 1, 2, 0];
        let gold = [0usize, 1, 2, 2, 1];
        let cm = ConfusionMatrix::new(&pred, &gold, 3);
        assert_eq!(cm.count(0, 0), 1);
        assert_eq!(cm.count(2, 1), 1); // true 2 predicted 1
        assert_eq!(cm.count(1, 0), 1); // true 1 predicted 0
        assert!((cm.accuracy() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn per_class_recall_handles_absent_classes() {
        let pred = [0usize, 0];
        let gold = [0usize, 0];
        let cm = ConfusionMatrix::new(&pred, &gold, 2);
        let recall = cm.per_class_recall();
        assert_eq!(recall[0], Some(100.0));
        assert_eq!(recall[1], None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_class() {
        let _ = ConfusionMatrix::new(&[5], &[0], 3);
    }
}
