//! Schedule ranking and aggregation — the machinery behind the paper's
//! Table 1 (Top-1/Top-3 percentages) and Figure 1 (average rank vs budget).

use std::collections::BTreeMap;

/// The scores of every schedule in one experimental cell
/// (setting × optimizer × budget).
#[derive(Debug, Clone, PartialEq)]
pub struct SettingResult {
    /// Experiment short name, e.g. `"RN20-CIFAR10"`.
    pub setting: String,
    /// Optimizer family, `"SGDM"` or `"Adam"`.
    pub optimizer: String,
    /// Budget as a percentage of the setting's maximum epochs.
    pub budget_pct: u32,
    /// `(schedule name, mean score)` pairs.
    pub scores: Vec<(String, f64)>,
    /// Whether lower scores win (true for error/loss, false for
    /// accuracy/mAP).
    pub lower_is_better: bool,
}

impl SettingResult {
    /// Competition ranks (1 = best; ties share the better rank) for every
    /// schedule in this cell.
    pub fn ranks(&self) -> Vec<(String, usize)> {
        // NaN scores (diverged runs) rank last regardless of direction
        let mut order: Vec<usize> = (0..self.scores.len()).collect();
        order.sort_by(|&a, &b| {
            let (x, y) = (self.scores[a].1, self.scores[b].1);
            match (x.is_nan(), y.is_nan()) {
                (true, true) => std::cmp::Ordering::Equal,
                (true, false) => std::cmp::Ordering::Greater,
                (false, true) => std::cmp::Ordering::Less,
                (false, false) => {
                    let cmp = x.total_cmp(&y);
                    if self.lower_is_better {
                        cmp
                    } else {
                        cmp.reverse()
                    }
                }
            }
        });
        let mut ranks = vec![0usize; self.scores.len()];
        let mut rank = 1;
        for (pos, &idx) in order.iter().enumerate() {
            if pos > 0 {
                let prev = order[pos - 1];
                if self.scores[idx].1 != self.scores[prev].1 {
                    rank = pos + 1;
                }
            }
            ranks[idx] = rank;
        }
        self.scores
            .iter()
            .map(|(name, _)| name.clone())
            .zip(ranks)
            .collect()
    }
}

/// Top-1/Top-3 percentages for one schedule (one row of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TopShares {
    /// Fraction (%) of cells where the schedule ranked first.
    pub top1_pct: f64,
    /// Fraction (%) of cells where the schedule ranked in the best three.
    pub top3_pct: f64,
    /// Number of cells aggregated.
    pub cells: usize,
}

/// Aggregates Top-1/Top-3 shares per schedule over a set of cells,
/// optionally filtered by a budget predicate (the paper splits at 25 %:
/// low = {1, 5, 10}, high = {25, 50, 100}).
pub fn top_shares(
    cells: &[SettingResult],
    budget_filter: impl Fn(u32) -> bool,
) -> BTreeMap<String, TopShares> {
    let mut out: BTreeMap<String, TopShares> = BTreeMap::new();
    for cell in cells.iter().filter(|c| budget_filter(c.budget_pct)) {
        for (name, rank) in cell.ranks() {
            let entry = out.entry(name).or_default();
            entry.cells += 1;
            if rank == 1 {
                entry.top1_pct += 1.0;
            }
            if rank <= 3 {
                entry.top3_pct += 1.0;
            }
        }
    }
    for share in out.values_mut() {
        if share.cells > 0 {
            share.top1_pct *= 100.0 / share.cells as f64;
            share.top3_pct *= 100.0 / share.cells as f64;
        }
    }
    out
}

/// The paper's low-budget regime (< 25 % of maximum epochs).
pub fn is_low_budget(pct: u32) -> bool {
    pct < 25
}

/// Average rank of each schedule at each budget, for one optimizer —
/// the data series of Figure 1 (one panel per optimizer).
pub fn average_rank_by_budget(
    cells: &[SettingResult],
    optimizer: &str,
) -> BTreeMap<u32, Vec<(String, f64)>> {
    let mut acc: BTreeMap<u32, BTreeMap<String, (f64, usize)>> = BTreeMap::new();
    for cell in cells.iter().filter(|c| c.optimizer == optimizer) {
        let by_budget = acc.entry(cell.budget_pct).or_default();
        for (name, rank) in cell.ranks() {
            let slot = by_budget.entry(name).or_insert((0.0, 0));
            slot.0 += rank as f64;
            slot.1 += 1;
        }
    }
    acc.into_iter()
        .map(|(budget, by_sched)| {
            let series = by_sched
                .into_iter()
                .map(|(name, (sum, n))| (name, sum / n as f64))
                .collect();
            (budget, series)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(budget: u32, opt: &str, scores: &[(&str, f64)]) -> SettingResult {
        SettingResult {
            setting: "TEST".into(),
            optimizer: opt.into(),
            budget_pct: budget,
            scores: scores.iter().map(|(n, s)| (n.to_string(), *s)).collect(),
            lower_is_better: true,
        }
    }

    #[test]
    fn ranks_lower_is_better() {
        let c = cell(10, "SGDM", &[("A", 3.0), ("B", 1.0), ("C", 2.0)]);
        let ranks: BTreeMap<_, _> = c.ranks().into_iter().collect();
        assert_eq!(ranks["A"], 3);
        assert_eq!(ranks["B"], 1);
        assert_eq!(ranks["C"], 2);
    }

    #[test]
    fn ranks_higher_is_better_flag() {
        let mut c = cell(10, "SGDM", &[("A", 3.0), ("B", 1.0)]);
        c.lower_is_better = false;
        let ranks: BTreeMap<_, _> = c.ranks().into_iter().collect();
        assert_eq!(ranks["A"], 1);
        assert_eq!(ranks["B"], 2);
    }

    #[test]
    fn ties_share_the_better_rank() {
        let c = cell(10, "SGDM", &[("A", 1.0), ("B", 1.0), ("C", 2.0)]);
        let ranks: BTreeMap<_, _> = c.ranks().into_iter().collect();
        assert_eq!(ranks["A"], 1);
        assert_eq!(ranks["B"], 1);
        assert_eq!(ranks["C"], 3, "competition ranking skips rank 2");
    }

    #[test]
    fn top_shares_split_by_budget() {
        let cells = vec![
            cell(1, "SGDM", &[("REX", 1.0), ("Linear", 2.0)]),
            cell(5, "SGDM", &[("REX", 1.0), ("Linear", 2.0)]),
            cell(100, "SGDM", &[("REX", 2.0), ("Linear", 1.0)]),
        ];
        let low = top_shares(&cells, is_low_budget);
        assert!((low["REX"].top1_pct - 100.0).abs() < 1e-9);
        assert!((low["Linear"].top1_pct - 0.0).abs() < 1e-9);
        assert_eq!(low["REX"].cells, 2);
        let high = top_shares(&cells, |b| !is_low_budget(b));
        assert!((high["Linear"].top1_pct - 100.0).abs() < 1e-9);
        let all = top_shares(&cells, |_| true);
        assert!((all["REX"].top1_pct - 200.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn top3_counts_third_place() {
        let cells = vec![cell(
            5,
            "SGDM",
            &[("A", 1.0), ("B", 2.0), ("C", 3.0), ("D", 4.0)],
        )];
        let shares = top_shares(&cells, |_| true);
        assert_eq!(shares["C"].top3_pct, 100.0);
        assert_eq!(shares["D"].top3_pct, 0.0);
    }

    #[test]
    fn average_rank_filters_by_optimizer() {
        let cells = vec![
            cell(1, "SGDM", &[("A", 1.0), ("B", 2.0)]),
            cell(1, "SGDM", &[("A", 2.0), ("B", 1.0)]),
            cell(1, "Adam", &[("A", 9.0), ("B", 1.0)]),
        ];
        let sgdm = average_rank_by_budget(&cells, "SGDM");
        let series: BTreeMap<_, _> = sgdm[&1].iter().cloned().collect();
        assert!((series["A"] - 1.5).abs() < 1e-9);
        assert!((series["B"] - 1.5).abs() < 1e-9);
        let adam = average_rank_by_budget(&cells, "Adam");
        let series: BTreeMap<_, _> = adam[&1].iter().cloned().collect();
        assert!((series["A"] - 2.0).abs() < 1e-9);
    }
}
