//! Flat experiment records with CSV persistence.
//!
//! Every experiment binary appends [`Record`]s to a CSV file; the aggregate
//! binaries (`table1`, `fig1`) read those files back to build Table 1 and
//! Figure 1 without re-running training. The format is a plain
//! comma-separated file with a fixed header — no external serialisation
//! dependency needed.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::ranking::SettingResult;

/// One trial result: a single (setting, optimizer, schedule, budget, trial)
/// cell's score.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Experiment short name (e.g. `RN20-CIFAR10`).
    pub setting: String,
    /// Optimizer family (`SGDM`/`Adam`/`AdamW`).
    pub optimizer: String,
    /// Schedule display name.
    pub schedule: String,
    /// Budget in percent of maximum epochs.
    pub budget_pct: u32,
    /// Trial index.
    pub trial: u32,
    /// The metric value (error %, loss, mAP, or score).
    pub score: f64,
    /// Whether lower scores are better for this setting.
    pub lower_is_better: bool,
}

const HEADER: &str = "setting,optimizer,schedule,budget_pct,trial,score,lower_is_better";

/// Serialises records to CSV (with header).
pub fn to_csv(records: &[Record]) -> String {
    let mut out = String::from(HEADER);
    out.push('\n');
    for r in records {
        // schedule names contain no commas by construction; assert anyway
        debug_assert!(!r.setting.contains(',') && !r.schedule.contains(','));
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{}",
            r.setting, r.optimizer, r.schedule, r.budget_pct, r.trial, r.score, r.lower_is_better
        );
    }
    out
}

/// Parses records from CSV produced by [`to_csv`].
///
/// # Errors
///
/// Returns an [`io::Error`] with kind `InvalidData` on malformed rows.
pub fn from_csv(text: &str) -> io::Result<Vec<Record>> {
    let mut lines = text.lines();
    match lines.next() {
        Some(h) if h.trim() == HEADER => {}
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad CSV header: {other:?}"),
            ))
        }
    }
    let bad = |line: &str, what: &str| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad {what} in CSV row: {line}"),
        )
    };
    let mut out = Vec::new();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split(',').collect();
        if parts.len() != 7 {
            return Err(bad(line, "field count"));
        }
        out.push(Record {
            setting: parts[0].to_string(),
            optimizer: parts[1].to_string(),
            schedule: parts[2].to_string(),
            budget_pct: parts[3].parse().map_err(|_| bad(line, "budget"))?,
            trial: parts[4].parse().map_err(|_| bad(line, "trial"))?,
            score: parts[5].parse().map_err(|_| bad(line, "score"))?,
            lower_is_better: parts[6].parse().map_err(|_| bad(line, "flag"))?,
        });
    }
    Ok(out)
}

/// Writes records to `path`, creating parent directories.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csv(path: &Path, records: &[Record]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, to_csv(records))
}

/// Reads records from `path`.
///
/// # Errors
///
/// Propagates filesystem and parse errors.
pub fn read_csv(path: &Path) -> io::Result<Vec<Record>> {
    from_csv(&fs::read_to_string(path)?)
}

/// Groups trial records into per-cell [`SettingResult`]s (averaging over
/// trials) for the ranking aggregations.
pub fn to_setting_results(records: &[Record]) -> Vec<SettingResult> {
    use std::collections::BTreeMap;
    // key: (setting, optimizer, budget) -> schedule -> (sum, n, lower)
    type CellKey = (String, String, u32);
    let mut cells: BTreeMap<CellKey, BTreeMap<String, (f64, usize, bool)>> = BTreeMap::new();
    for r in records {
        let cell = cells
            .entry((r.setting.clone(), r.optimizer.clone(), r.budget_pct))
            .or_default();
        let slot = cell
            .entry(r.schedule.clone())
            .or_insert((0.0, 0, r.lower_is_better));
        slot.0 += r.score;
        slot.1 += 1;
    }
    cells
        .into_iter()
        .map(|((setting, optimizer, budget_pct), by_sched)| {
            let lower = by_sched.values().next().map(|v| v.2).unwrap_or(true);
            SettingResult {
                setting,
                optimizer,
                budget_pct,
                scores: by_sched
                    .into_iter()
                    .map(|(name, (sum, n, _))| (name, sum / n as f64))
                    .collect(),
                lower_is_better: lower,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(schedule: &str, budget: u32, trial: u32, score: f64) -> Record {
        Record {
            setting: "RN20-CIFAR10".into(),
            optimizer: "SGDM".into(),
            schedule: schedule.into(),
            budget_pct: budget,
            trial,
            score,
            lower_is_better: true,
        }
    }

    #[test]
    fn csv_roundtrip() {
        let records = vec![
            rec("REX", 1, 0, 27.94),
            rec("Linear Schedule", 100, 2, 7.62),
        ];
        let parsed = from_csv(&to_csv(&records)).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn rejects_bad_header_and_rows() {
        assert!(from_csv("nonsense\n1,2,3").is_err());
        let bad_row = format!("{HEADER}\na,b,c\n");
        assert!(from_csv(&bad_row).is_err());
        let bad_score = format!("{HEADER}\ns,o,x,1,0,notanumber,true\n");
        assert!(from_csv(&bad_score).is_err());
    }

    #[test]
    fn empty_lines_skipped() {
        let text = format!("{HEADER}\n\n");
        assert_eq!(from_csv(&text).unwrap().len(), 0);
    }

    #[test]
    fn grouping_averages_trials() {
        let records = vec![
            rec("REX", 1, 0, 10.0),
            rec("REX", 1, 1, 12.0),
            rec("Linear", 1, 0, 15.0),
            rec("REX", 5, 0, 8.0),
        ];
        let cells = to_setting_results(&records);
        assert_eq!(cells.len(), 2);
        let c1 = cells.iter().find(|c| c.budget_pct == 1).unwrap();
        let rex = c1.scores.iter().find(|(n, _)| n == "REX").unwrap();
        assert!((rex.1 - 11.0).abs() < 1e-12);
        assert_eq!(c1.scores.len(), 2);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("rex_eval_store_test");
        let path = dir.join("results.csv");
        let records = vec![rec("REX", 10, 0, 5.5)];
        write_csv(&path, &records).unwrap();
        assert_eq!(read_csv(&path).unwrap(), records);
        let _ = std::fs::remove_dir_all(dir);
    }
}
