//! # rex-eval — statistics, rank aggregation, and table formatting
//!
//! The paper's headline artifacts are *aggregates*: Table 1 counts Top-1 /
//! Top-3 finishes per schedule over all experiments, and Figure 1 plots the
//! average rank of each schedule against the training budget. This crate
//! implements those aggregations plus the supporting pieces:
//!
//! * [`stats`] — mean / standard deviation over trials (the `± x.xx`
//!   columns of Tables 4–9);
//! * [`ranking`] — per-setting schedule ranks, Top-1/Top-3 percentages
//!   (Table 1), and average-rank-vs-budget curves (Figure 1);
//! * [`map`] — PASCAL-style mean average precision for the detection
//!   setting (Table 9);
//! * [`table`] — markdown/CSV emitters used by every experiment binary;
//! * [`store`] — a flat result record + CSV (de)serialisation, so
//!   aggregate binaries (`table1`, `fig1`) can consume the per-setting
//!   grids produced by earlier runs.

#![warn(missing_docs)]

pub mod map;
pub mod ranking;
pub mod stats;
pub mod store;
pub mod table;
