//! Markdown table emission — every experiment binary prints its results in
//! the same row/column layout as the paper's tables.

/// Renders a markdown table with bold markers on the best entries.
///
/// `headers` is the header row; each row is a label plus one cell per
/// remaining column.
///
/// # Panics
///
/// Panics if any row's cell count differs from the header's.
pub fn markdown(headers: &[String], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(
            row.len(),
            headers.len(),
            "row width {} != header width {}",
            row.len(),
            headers.len()
        );
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let emit_row = |cells: &[String], widths: &[usize], out: &mut String| {
        out.push('|');
        for (cell, w) in cells.iter().zip(widths) {
            out.push(' ');
            out.push_str(cell);
            out.push_str(&" ".repeat(w - cell.len() + 1));
            out.push('|');
        }
        out.push('\n');
    };
    emit_row(headers, &widths, &mut out);
    out.push('|');
    for w in &widths {
        out.push_str(&"-".repeat(w + 2));
        out.push('|');
    }
    out.push('\n');
    for row in rows {
        emit_row(row, &widths, &mut out);
    }
    out
}

/// Marks the best (and top-3) values per column with the paper's
/// convention: `**bold**` for Top-1, `*italic*` for Top-3. `col_values`
/// are the numeric values backing each row's cell in one column.
pub fn mark_best_per_column(
    rows: &mut [Vec<String>],
    col: usize,
    col_values: &[f64],
    lower_is_better: bool,
) {
    if col_values.len() != rows.len() || rows.is_empty() {
        return;
    }
    // NaN scores (diverged runs) always sort last, regardless of direction
    let mut order: Vec<usize> = (0..col_values.len()).collect();
    order.sort_by(|&a, &b| {
        let (x, y) = (col_values[a], col_values[b]);
        match (x.is_nan(), y.is_nan()) {
            (true, true) => std::cmp::Ordering::Equal,
            (true, false) => std::cmp::Ordering::Greater,
            (false, true) => std::cmp::Ordering::Less,
            (false, false) => {
                let cmp = x.total_cmp(&y);
                if lower_is_better {
                    cmp
                } else {
                    cmp.reverse()
                }
            }
        }
    });
    for (pos, &idx) in order.iter().enumerate() {
        if pos == 0 {
            rows[idx][col] = format!("**{}**", rows[idx][col]);
        } else if pos < 3 {
            rows[idx][col] = format!("*{}*", rows[idx][col]);
        }
    }
}

/// Formats a float with two decimals (the paper's precision).
pub fn fmt2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn renders_aligned_markdown() {
        let table = markdown(
            &s(&["Method", "1%", "100%"]),
            &[
                s(&["REX", "27.94", "7.52"]),
                s(&["Linear", "28.70", "7.62"]),
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Method"));
        assert!(lines[1].starts_with("|--"));
        assert!(lines[2].contains("REX"));
        // all lines same width (aligned)
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_rows_panic() {
        let _ = markdown(&s(&["a", "b"]), &[s(&["only one"])]);
    }

    #[test]
    fn best_marking_bold_and_italic() {
        let mut rows = vec![
            s(&["A", "3.0"]),
            s(&["B", "1.0"]),
            s(&["C", "2.0"]),
            s(&["D", "4.0"]),
        ];
        mark_best_per_column(&mut rows, 1, &[3.0, 1.0, 2.0, 4.0], true);
        assert_eq!(rows[1][1], "**1.0**");
        assert_eq!(rows[2][1], "*2.0*");
        assert_eq!(rows[0][1], "*3.0*");
        assert_eq!(rows[3][1], "4.0");
    }

    #[test]
    fn higher_is_better_marking() {
        let mut rows = vec![s(&["A", "10"]), s(&["B", "90"])];
        mark_best_per_column(&mut rows, 1, &[10.0, 90.0], false);
        assert_eq!(rows[1][1], "**90**");
    }

    #[test]
    fn fmt2_rounds() {
        assert_eq!(fmt2(std::f64::consts::PI), "3.14");
        assert_eq!(fmt2(2.0), "2.00");
    }
}
