//! `rexctl` — command-line interface for the REX budgeted-training library.
//!
//! ```text
//! rexctl schedules                         list every available schedule
//! rexctl curve --schedule rex --points 20  print a schedule's LR curve
//! rexctl train --setting rn20-cifar10 --budget 10 --schedule rex
//! rexctl sweep --setting rn20-cifar10 --budgets 5,25,100
//! rexctl range-test --setting rn20-cifar10
//! ```

mod args;
mod commands;
mod trace_cmd;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match argv.first().map(String::as_str) {
        Some("schedules") => commands::schedules(),
        Some("curve") => commands::curve(&argv[1..]),
        Some("train") => commands::train(&argv[1..]),
        Some("sweep") => commands::sweep(&argv[1..]),
        Some("range-test") => commands::range_test(&argv[1..]),
        Some("serve") => commands::serve(&argv[1..]),
        Some("export") => commands::export(&argv[1..]),
        Some("trace") => trace_cmd::trace(&argv[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            0
        }
        Some(other) => {
            eprintln!("unknown command {other:?}\n");
            print_usage();
            2
        }
    };
    std::process::exit(code);
}

fn print_usage() {
    eprintln!(
        "rexctl — budgeted training with the REX schedule

USAGE:
  rexctl schedules
      List every schedule the library implements.

  rexctl curve --schedule <NAME> [--points N] [--budget-steps T]
      Print a schedule's LR-multiplier curve as CSV (progress,factor).

  rexctl train --setting <SETTING> [--budget PCT] [--schedule NAME]
               [--optimizer sgdm|adam] [--lr LR] [--seed S] [--trace FILE]
               [--threads N] [--backend scalar|simd|auto]
               [--dtype f32|f16|bf16]
               [--profile FILE] [--profile-detail phase|kernel]
               [--checkpoint PATH --checkpoint-every N]
               [--keep-checkpoints N] [--resume PATH]
               [--guard off|abort|skip|rollback] [--halt-after STEP]
      Train one budgeted cell and print the final metric. With --trace,
      write a JSONL telemetry trace (one step record per optimizer step)
      to FILE; same-seed runs produce byte-identical traces at any
      thread count. With --profile, collect a hierarchical span profile
      (job/epoch/step/data|forward|backward|optimizer/...), print its
      phase table at run end, and write Chrome trace-event JSON to FILE
      (load in Perfetto); --profile-detail kernel adds per-op compute
      spans. Profiling never changes the trace bytes.

  rexctl sweep --setting <SETTING> [--budgets 1,5,10,25,50,100]
               [--schedules rex,linear,...] [--optimizer sgdm|adam]
               [--threads N] [--backend scalar|simd|auto]
               [--dtype f32|f16|bf16] [--resume DIR]
               [--profile FILE] [--profile-detail phase|kernel]
      Run a schedule x budget mini-grid and print a markdown table.
      --resume DIR leaves a done-marker per finished cell and skips
      marked cells on the next run. --profile aggregates a span profile
      across every cell and writes it to FILE as Chrome trace JSON.

  rexctl trace summary FILE
  rexctl trace diff EXPECTED ACTUAL
  rexctl trace profile FILE [--top K]
      Offline trace analysis: summarize a JSONL training trace (run
      header plus lr/loss sparklines), diff two traces with the golden
      comparator (exit 0 and silence when they match; the first
      divergent event and step otherwise), or rank the hottest spans of
      a --profile Chrome trace.

  rexctl range-test --setting <SETTING> [--optimizer sgdm|adam] [--trace FILE]
               [--threads N] [--backend scalar|simd|auto]
      Run an LR range test and print the suggested initial LR.

  rexctl export --from CKPT --out FILE [--quant q8_0|f16|f32]
      Convert a REXSTATE1 training checkpoint into a REXGGUF model file:
      a single mmap-friendly image holding the model tensors (parameters
      plus batch-norm statistics), every payload 32-byte aligned. --quant
      picks the storage format (default f16); q8_0 block-quantizes 2-D+
      tensors (32-element blocks, one f16 scale each) and keeps biases
      and norm parameters f32.

  rexctl serve --data-dir DIR [--addr HOST:PORT] [--queue-depth N]
               [--workers N] [--checkpoint-every STEPS]
               [--threads N] [--backend scalar|simd|auto]
               [--access-log FILE] [--profile on|off]
               [--metrics-compat on|off]
      Run the budgeted-training job server (HTTP/1.1, zero deps) in the
      foreground. POST /v1/jobs submits a train job as flat JSON; a full
      queue answers 429 + Retry-After. GET /v1/jobs/:id/trace streams the
      live JSONL trace; GET /metrics is Prometheus-style (histogram
      timers with _bucket/_sum/_count). Job state lives under
      --data-dir: restarting on the same directory re-enqueues
      unfinished jobs, which resume from their last checkpoint and finish
      with byte-identical traces. --access-log appends one key=value
      line per request; every response carries an X-Request-Id that also
      lands in the submitted job's manifest; --profile on writes a span
      profile per job to jobs/<id>/profile.json.

THREADS:
  --threads N sizes the persistent worker pool (overrides the
  REX_NUM_THREADS environment variable). Results are bitwise identical
  at any thread count.

PRECISION:
  --dtype f32|f16|bf16 picks the parameter storage precision. All
  arithmetic stays in f32 (master weights); f16/bf16 round stored
  parameters, optimizer state, and buffers after every step, halving
  checkpoint tensor sections. A checkpoint records its dtype and a
  resume with a different --dtype is refused. Default f32 is the
  legacy path with byte-identical traces and snapshots.

BACKEND:
  --backend scalar|simd|auto picks the compute backend (overrides the
  REX_BACKEND environment variable; default auto = simd wherever a
  vector unit exists). Numerics are a property of the backend: within
  one backend results are bitwise identical at any thread count, across
  backends they agree to rounding.

FAULT TOLERANCE (train, image and digits settings):
  --checkpoint PATH --checkpoint-every N snapshot the full training
  state (model, optimizer, RNG, schedule progress, trace cursor) every
  N optimizer steps, crash-consistently. With --keep-checkpoints N,
  PATH is a directory holding the N newest generational snapshots
  (state.00017.rexstate ...) plus a LATEST pointer; without it, PATH is
  a single file overwritten in place. --resume PATH continues an
  interrupted run from its snapshot; pointing it at a lineage directory
  resumes the newest valid generation, falling back generation by
  generation past truncated/corrupt snapshots with a named reason per
  skip. With --trace the finished trace is byte-identical to an
  uninterrupted run's. --guard picks the response to a non-finite
  loss/gradient (abort names the step and tensor; skip drops the step
  but advances the budget; rollback restores the last checkpoint).
  --halt-after STEP stops cleanly after that step — a deterministic
  in-process kill for testing resume.

SETTINGS:
  rn20-cifar10 | rn38-cifar10 | wrn-stl10 | vgg16-cifar100 | vae-mnist
  | digits-mlp (tiny MLP on synthetic digits — the load-test cell)

SCHEDULES (case-insensitive):
  none, rex, linear, cosine, step, exp, onecycle, plateau,
  sgdr, triangular, inverse-sqrt, rex-beta=<B>, delayed-linear=<F>"
    );
}
