//! `rexctl trace` — offline analysis of JSONL training traces and
//! Chrome-trace span profiles.
//!
//! ```text
//! rexctl trace summary FILE            step counts + lr/loss sparklines
//! rexctl trace diff EXPECTED ACTUAL    first divergent event, or silence
//! rexctl trace profile FILE [--top K]  hottest spans of a span profile
//! ```

use std::path::Path;

use rex_telemetry::golden::{diff_traces, Tolerances};
use rex_telemetry::span::Profile;
use rex_telemetry::{parse_trace, Event};

use crate::args::Flags;

/// Usage text for `rexctl trace`.
pub const USAGE: &str = "\
usage: rexctl trace summary FILE
       rexctl trace diff EXPECTED ACTUAL
       rexctl trace profile FILE [--top K]

summary  Render a JSONL training trace as a run header, event counts,
         and lr/loss sparklines over optimizer steps.
diff     Compare two JSONL traces with the golden-trace comparator
         (exact structure, per-field float tolerances; timing ignored).
         Prints nothing and exits 0 when the traces match; otherwise
         names the first divergent event/step and exits 1.
profile  Show the hottest spans of a Chrome trace-event profile, as
         written by --profile or a server running with --profile on.";

/// Dispatches `rexctl trace SUBCOMMAND ...`.
pub fn trace(argv: &[String]) -> i32 {
    let result = match argv.first().map(String::as_str) {
        Some("summary") => summary(&argv[1..]),
        Some("diff") => diff(&argv[1..]),
        Some("profile") => profile(&argv[1..]),
        Some("help") | None => {
            eprintln!("{USAGE}");
            return 2;
        }
        Some(other) => Err(format!("unknown trace subcommand {other:?}")),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            2
        }
    }
}

/// Splits leading non-flag arguments (file paths) from trailing
/// `--key value` flags.
fn positionals<'a>(argv: &'a [String], expect: &str) -> Result<(Vec<&'a str>, Flags), String> {
    let split = argv
        .iter()
        .position(|a| a.starts_with("--"))
        .unwrap_or(argv.len());
    let flags = Flags::parse(&argv[split..])?;
    if split == 0 {
        return Err(format!("expected {expect}"));
    }
    Ok((argv[..split].iter().map(String::as_str).collect(), flags))
}

fn read_events(path: &str) -> Result<Vec<Event>, String> {
    let text = std::fs::read_to_string(Path::new(path))
        .map_err(|e| format!("cannot read trace {path}: {e}"))?;
    parse_trace(&text).map_err(|e| format!("{path}: {e}"))
}

/// `rexctl trace summary FILE`
fn summary(argv: &[String]) -> Result<i32, String> {
    let (files, _flags) = positionals(argv, "a trace file")?;
    let [path] = files.as_slice() else {
        return Err(format!("summary takes one trace file, got {}", files.len()));
    };
    let events = read_events(path)?;

    let mut lr = Vec::new();
    let mut loss = Vec::new();
    let (mut epochs, mut validations, mut checkpoints) = (0u64, 0u64, 0u64);
    let mut metric = None;
    println!("trace: {path}");
    for ev in &events {
        match ev {
            Event::RunStart {
                run,
                schedule,
                optimizer,
                seed,
                total_samples,
            } => println!(
                "run {run} | schedule {schedule} | optimizer {optimizer} | seed {seed} | \
                 {total_samples} samples budgeted"
            ),
            Event::Epoch { .. } => epochs += 1,
            Event::Step(r) => {
                lr.push(r.lr);
                loss.push(r.loss);
            }
            Event::Validation { .. } => validations += 1,
            Event::RunEnd { metric: m } => metric = Some(*m),
            _ => checkpoints += 1,
        }
    }
    println!(
        "{} events | {} epochs | {} steps | {} validations | {} other",
        events.len(),
        epochs,
        lr.len(),
        validations,
        checkpoints
    );
    print_sparkline("lr", &lr);
    print_sparkline("loss", &loss);
    if let Some(m) = metric {
        println!("final metric: {m}");
    }
    Ok(0)
}

/// Prints `label  first .. last` plus a sparkline over the series.
fn print_sparkline(label: &str, values: &[f64]) {
    let Some((first, last)) = values.first().zip(values.last()) else {
        return;
    };
    println!("{label:<5} {first:.6} .. {last:.6}");
    println!("      {}", sparkline(values, 60));
}

/// Renders `values` as a fixed-width block-character sparkline,
/// mean-pooled into at most `width` columns.
fn sparkline(values: &[f64], width: usize) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return String::new();
    }
    let cols = width.min(finite.len()).max(1);
    let pooled: Vec<f64> = (0..cols)
        .map(|c| {
            let lo = c * finite.len() / cols;
            let hi = ((c + 1) * finite.len() / cols).max(lo + 1);
            finite[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect();
    let min = pooled.iter().copied().fold(f64::INFINITY, f64::min);
    let max = pooled.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    pooled
        .iter()
        .map(|v| {
            let t = if max > min {
                (v - min) / (max - min)
            } else {
                0.5
            };
            BLOCKS[((t * 7.0).round() as usize).min(7)]
        })
        .collect()
}

/// `rexctl trace diff EXPECTED ACTUAL`
fn diff(argv: &[String]) -> Result<i32, String> {
    let (files, _flags) = positionals(argv, "two trace files")?;
    let [expected_path, actual_path] = files.as_slice() else {
        return Err(format!("diff takes two trace files, got {}", files.len()));
    };
    let expected = read_events(expected_path)?;
    let actual = read_events(actual_path)?;
    match diff_traces(&expected, &actual, &Tolerances::default()) {
        Ok(()) => {
            println!("traces match ({} events)", expected.len());
            Ok(0)
        }
        Err(d) => {
            println!("{d}");
            Ok(1)
        }
    }
}

/// `rexctl trace profile FILE [--top K]`
fn profile(argv: &[String]) -> Result<i32, String> {
    let (files, flags) = positionals(argv, "a profile file")?;
    let [path] = files.as_slice() else {
        return Err(format!(
            "profile takes one Chrome-trace file, got {}",
            files.len()
        ));
    };
    let top: usize = flags.get_or("top", 10usize)?;
    let text = std::fs::read_to_string(Path::new(path))
        .map_err(|e| format!("cannot read profile {path}: {e}"))?;
    let prof = Profile::parse_chrome_trace(&text)?;
    let rows = prof.top_spans(top.max(1));
    if rows.is_empty() {
        println!("profile: no spans recorded");
        return Ok(0);
    }
    println!("profile: {path}");
    let path_w = rows
        .iter()
        .map(|r| r.path.len())
        .chain(["span".len()])
        .max()
        .unwrap();
    println!(
        "{:<path_w$}  {:>8}  {:>12}  {:>12}  {:>7}",
        "span", "calls", "excl(ms)", "incl(ms)", "%root"
    );
    for r in &rows {
        println!(
            "{:<path_w$}  {:>8}  {:>12.3}  {:>12.3}  {:>7.1}",
            r.path,
            r.calls,
            r.exclusive_ns as f64 * 1e-6,
            r.inclusive_ns as f64 * 1e-6,
            r.pct_of_root,
        );
    }
    Ok(0)
}
