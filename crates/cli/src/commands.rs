//! Subcommand implementations.

use rex_core::{all_paper_schedules, ScheduleSpec};
use rex_eval::table;
use rex_telemetry::{JsonlSink, Recorder};
use rex_train::range_test::lr_range_test_traced;
use rex_train::settings::{ft_is_active, load_setting, SettingSpec};
use rex_train::tasks::run_image_cell_traced;
use rex_train::{Budget, FtConfig, GuardPolicy, TrainState};
use std::path::{Path, PathBuf};

use crate::args::{parse_optimizer, parse_schedule, Flags};

/// Applies the optional `--threads <n>` flag to the worker pool. The flag
/// overrides `REX_NUM_THREADS`; it must come before the pool first runs a
/// task, which holds for flag parsing at subcommand entry.
fn threads_from_flags(flags: &Flags) -> Result<(), String> {
    match flags.get_or("threads", 0usize)? {
        0 if flags.get("threads").is_some() => Err("--threads must be an integer >= 1".to_string()),
        0 => Ok(()),
        n => rex_pool::set_num_threads(n).map_err(|e| format!("--threads {n}: {e}")),
    }
}

/// Applies the optional `--backend scalar|simd|auto` flag to the compute
/// dispatch. Like `--threads`, it overrides the `REX_BACKEND` environment
/// variable and must run before the first dispatched op, which holds for
/// flag parsing at subcommand entry.
fn backend_from_flags(flags: &Flags) -> Result<(), String> {
    match flags.get("backend") {
        None => Ok(()),
        Some(v) => {
            let kind =
                rex_tensor::BackendKind::parse(v).map_err(|e| format!("--backend {v:?}: {e}"))?;
            rex_tensor::backend::set_backend(kind).map_err(|e| format!("--backend: {e}"))
        }
    }
}

/// Parses the optional `--dtype f32|f16|bf16` flag: the parameter
/// storage precision (default f32, the legacy bit-exact path).
fn dtype_from_flags(flags: &Flags) -> Result<rex_tensor::DType, String> {
    match flags.get("dtype") {
        None => Ok(rex_tensor::DType::F32),
        Some(v) => match rex_tensor::DType::parse(v) {
            Some(d) if d.trainable() => Ok(d),
            Some(d) => Err(format!(
                "--dtype: {d} is not a trainable dtype (expected f32 | f16 | bf16)"
            )),
            None => Err(format!("--dtype {v:?}: expected f32 | f16 | bf16")),
        },
    }
}

/// Builds a recorder from the optional `--trace <path>` flag: a JSONL
/// writer when given, otherwise disabled.
fn recorder_from_flags(flags: &Flags) -> Result<Recorder, String> {
    match flags.get("trace") {
        Some(path) => {
            let sink = JsonlSink::create(Path::new(path))
                .map_err(|e| format!("cannot create trace file {path:?}: {e}"))?;
            Ok(Recorder::new(Box::new(sink)))
        }
        None => Ok(Recorder::disabled()),
    }
}

/// Parses the fault-tolerance flags of `rexctl train`:
/// `--checkpoint PATH --checkpoint-every N --keep-checkpoints N
/// --resume PATH --guard off|abort|skip|rollback --halt-after N`.
fn ft_from_flags(flags: &Flags) -> Result<FtConfig, String> {
    let checkpoint_path = flags.get("checkpoint").map(PathBuf::from);
    let checkpoint_every = match flags.get("checkpoint-every") {
        Some(v) => Some(
            v.parse::<u64>()
                .map_err(|_| format!("bad value for --checkpoint-every: {v:?}"))?,
        ),
        None => None,
    };
    if checkpoint_every.is_some() && checkpoint_path.is_none() {
        return Err("--checkpoint-every requires --checkpoint PATH".into());
    }
    if checkpoint_path.is_some() && checkpoint_every.is_none() {
        return Err("--checkpoint requires --checkpoint-every N".into());
    }
    let keep_checkpoints = match flags.get("keep-checkpoints") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => Some(n),
            _ => return Err(format!("--keep-checkpoints must be >= 1, got {v:?}")),
        },
        None => None,
    };
    if keep_checkpoints.is_some() && checkpoint_path.is_none() {
        return Err("--keep-checkpoints requires --checkpoint DIR --checkpoint-every N".into());
    }
    let guard = match flags.get("guard") {
        Some(v) => GuardPolicy::parse(v)?,
        None => GuardPolicy::Off,
    };
    let halt_after_step = match flags.get("halt-after") {
        Some(v) => Some(
            v.parse::<u64>()
                .map_err(|_| format!("bad value for --halt-after: {v:?}"))?,
        ),
        None => None,
    };
    Ok(FtConfig {
        checkpoint_every,
        checkpoint_path,
        resume_from: flags.get("resume").map(PathBuf::from),
        guard,
        halt_after_step,
        stop_flag: None,
        keep_checkpoints,
        checkpoint_on_halt: false,
        heartbeat: None,
    })
}

/// Resolves a `--resume DIR` checkpoint lineage to its newest valid
/// generation before the trace recorder needs the snapshot's line cursor.
/// Skipped generations are reported to stderr with their named reason;
/// `ft.resume_from` is rewritten to the resolved generation file.
fn resolve_resume(ft: &mut FtConfig) -> Result<(), String> {
    let Some(path) = &ft.resume_from else {
        return Ok(());
    };
    if !path.is_dir() {
        return Ok(());
    }
    let (_, resolved, report) = rex_train::Lineage::resolve(path)
        .map_err(|e| format!("cannot resume from lineage {}: {e}", path.display()))?;
    if report.fallbacks() > 0 {
        eprint!("{report}");
        eprintln!();
    }
    eprintln!("resuming from {}", resolved.display());
    ft.resume_from = Some(resolved);
    Ok(())
}

/// Applies the optional `--profile FILE [--profile-detail phase|kernel]`
/// flags: enables the thread-local span profiler and returns the output
/// path. The profiler is invisible to the Recorder, so traces stay
/// byte-identical with profiling on.
fn profile_from_flags(flags: &Flags) -> Result<Option<PathBuf>, String> {
    let Some(path) = flags.get("profile") else {
        if flags.get("profile-detail").is_some() {
            return Err("--profile-detail requires --profile FILE".into());
        }
        return Ok(None);
    };
    let detail = match flags.get("profile-detail") {
        None => rex_telemetry::span::Detail::Phase,
        Some(v) => {
            rex_telemetry::span::Detail::parse(v).map_err(|e| format!("--profile-detail: {e}"))?
        }
    };
    rex_telemetry::span::enable(detail);
    Ok(Some(PathBuf::from(path)))
}

/// Writes the collected span profile as Chrome trace JSON and prints its
/// phase table — the end-of-run self-profile.
fn finish_profile(path: &Path) -> Result<(), String> {
    let profile = rex_telemetry::span::take();
    std::fs::write(path, profile.to_chrome_trace())
        .map_err(|e| format!("cannot write profile {}: {e}", path.display()))?;
    print!("{}", profile.render_phase_table());
    eprintln!("profile written to {}", path.display());
    Ok(())
}

/// Builds the trace recorder for `train`. A resumed run re-opens the
/// existing trace and truncates it to the snapshot's line cursor, so the
/// finished file is byte-identical to an uninterrupted run's; a fresh run
/// creates (truncates) the file.
fn recorder_for_train(flags: &Flags, ft: &FtConfig) -> Result<Recorder, String> {
    let Some(path) = flags.get("trace") else {
        return Ok(Recorder::disabled());
    };
    let path = Path::new(path);
    let sink = match &ft.resume_from {
        Some(ckpt) => {
            let cursor = TrainState::trace_cursor(ckpt)
                .map_err(|e| format!("cannot read checkpoint {}: {e}", ckpt.display()))?;
            JsonlSink::resume(path, cursor)
                .map_err(|e| format!("cannot resume trace file {}: {e}", path.display()))?
        }
        None => JsonlSink::create(path)
            .map_err(|e| format!("cannot create trace file {}: {e}", path.display()))?,
    };
    Ok(Recorder::new(Box::new(sink)))
}

/// `rexctl schedules`
pub fn schedules() -> i32 {
    println!("Schedules evaluated in the paper (Tables 4-11):");
    for spec in std::iter::once(ScheduleSpec::None).chain(all_paper_schedules(2)) {
        let mut s = spec.build();
        println!(
            "  {:<18} factor at 0/50/100%: {:.3} / {:.3} / {:.3}",
            spec.name(),
            s.factor(0, 100),
            s.factor(50, 100),
            s.factor(100, 100)
        );
    }
    println!("\nExtensions (cited in the paper's related work):");
    for spec in [
        ScheduleSpec::CosineRestarts(3, 2.0),
        ScheduleSpec::Cyclical(3),
        ScheduleSpec::InverseSqrt(0.1),
        ScheduleSpec::RexBeta(0.25),
        ScheduleSpec::Delayed(Box::new(ScheduleSpec::Linear), 0.5),
    ] {
        let mut s = spec.build();
        println!(
            "  {:<18} factor at 0/50/100%: {:.3} / {:.3} / {:.3}",
            spec.name(),
            s.factor(0, 100),
            s.factor(50, 100),
            s.factor(100, 100)
        );
    }
    0
}

/// `rexctl curve --schedule rex [--points N] [--budget-steps T]`
pub fn curve(argv: &[String]) -> i32 {
    match curve_inner(argv) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    }
}

fn curve_inner(argv: &[String]) -> Result<(), String> {
    let flags = Flags::parse(argv)?;
    let spec = parse_schedule(flags.require("schedule")?)?;
    let points: u64 = flags.get_or("points", 50u64)?;
    let total: u64 = flags.get_or("budget-steps", 1000u64)?;
    let mut sched = spec.build();
    println!("progress,factor");
    for i in 0..=points {
        let t = i * total / points.max(1);
        println!(
            "{:.4},{:.6}",
            t as f64 / total as f64,
            sched.factor(t, total)
        );
    }
    Ok(())
}

/// `rexctl train --setting rn20-cifar10 --budget 10 --schedule rex`
pub fn train(argv: &[String]) -> i32 {
    match train_inner(argv) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    }
}

fn train_inner(argv: &[String]) -> Result<(), String> {
    let flags = Flags::parse(argv)?;
    threads_from_flags(&flags)?;
    backend_from_flags(&flags)?;
    let seed: u64 = flags.get_or("seed", 0u64)?;
    let setting = load_setting(flags.require("setting")?, seed)?;
    let budget_pct: u32 = flags.get_or("budget", 100u32)?;
    if !(1..=100).contains(&budget_pct) {
        return Err(format!(
            "--budget must be 1..=100 (percent), got {budget_pct}"
        ));
    }
    let spec = parse_schedule(flags.get("schedule").unwrap_or("rex"))?;
    let optimizer = parse_optimizer(flags.get("optimizer").unwrap_or("sgdm"))?;
    let dtype = dtype_from_flags(&flags)?;
    let mut ft = ft_from_flags(&flags)?;
    resolve_resume(&mut ft)?;
    let profile_path = profile_from_flags(&flags)?;
    let mut rec = recorder_for_train(&flags, &ft)?;

    if !setting.supports_ft() && ft_is_active(&ft) {
        return Err(
            "checkpoint/resume/guard flags support image and digits settings; the VAE \
             path has no snapshot support yet"
                .into(),
        );
    }

    let t0 = std::time::Instant::now();
    let budget = Budget::new(setting.max_epochs(), budget_pct);
    let lr: f32 = flags.get_or("lr", setting.default_lr(&optimizer))?;
    let metric = setting
        .run_ft(
            budget_pct,
            optimizer,
            spec.clone(),
            lr,
            seed,
            dtype,
            ft,
            &mut rec,
        )
        .map_err(|e| e.to_string())?;
    let metric_rendered = match setting.metric_label() {
        "test error" => format!("test error {metric:.2}%"),
        label => format!("{label} {metric:.2}"),
    };
    println!(
        "{} | {} | {} | budget {budget} | lr {lr} -> {metric_rendered}  ({:.1?})",
        setting.name(),
        optimizer.name(),
        spec.name(),
        t0.elapsed()
    );
    if let Some(path) = flags.get("trace") {
        eprintln!("trace written to {path}");
    }
    if let Some(path) = &profile_path {
        finish_profile(path)?;
    }
    Ok(())
}

/// Lowercases and dash-collapses one component of a done-marker name.
fn slug(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if !out.ends_with('-') {
            out.push('-');
        }
    }
    out.trim_matches('-').to_string()
}

/// The done-marker filename one sweep cell leaves under `--resume DIR`.
fn sweep_done_name(
    setting: &str,
    optimizer: &rex_train::OptimizerKind,
    spec: &ScheduleSpec,
    budget_pct: u32,
) -> String {
    format!(
        "{}_{}_{}_b{budget_pct}.done",
        slug(setting),
        slug(optimizer.name()),
        slug(&spec.name())
    )
}

/// Reads a done-marker (score as exact `f64` bits in hex); `None` on any
/// problem, so a corrupt marker just re-runs the cell.
fn read_done_marker(path: &Path) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let bits = u64::from_str_radix(text.trim(), 16).ok()?;
    Some(f64::from_bits(bits))
}

/// Writes a done-marker crash-consistently; a marker only ever exists
/// with its full contents.
fn write_done_marker(path: &Path, score: f64) {
    let body = format!("{:016x}\n", score.to_bits());
    if let Err(e) = rex_faults::atomic_write("done", path, body.as_bytes()) {
        eprintln!("warning: cannot write done marker {}: {e}", path.display());
    }
}

/// `rexctl sweep --setting rn20-cifar10 --budgets 5,25,100`
/// (`--resume DIR` skips cells whose done-marker is already in DIR)
pub fn sweep(argv: &[String]) -> i32 {
    match sweep_inner(argv) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    }
}

fn sweep_inner(argv: &[String]) -> Result<(), String> {
    let flags = Flags::parse(argv)?;
    threads_from_flags(&flags)?;
    backend_from_flags(&flags)?;
    let seed: u64 = flags.get_or("seed", 0u64)?;
    let setting = load_setting(flags.require("setting")?, seed)?;
    let optimizer = parse_optimizer(flags.get("optimizer").unwrap_or("sgdm"))?;
    let dtype = dtype_from_flags(&flags)?;
    let budgets: Vec<u32> = flags
        .get("budgets")
        .unwrap_or("5,25,100")
        .split(',')
        .map(|s| s.trim().parse().map_err(|_| format!("bad budget {s:?}")))
        .collect::<Result<_, _>>()?;
    if let Some(&bad) = budgets.iter().find(|b| !(1..=100).contains(*b)) {
        return Err(format!("budgets must be 1..=100 (percent), got {bad}"));
    }
    let schedules: Vec<ScheduleSpec> = match flags.get("schedules") {
        Some(list) => list
            .split(',')
            .map(|s| parse_schedule(s.trim()))
            .collect::<Result<_, _>>()?,
        None => {
            let mut v = vec![ScheduleSpec::None];
            v.extend(all_paper_schedules(2));
            v
        }
    };

    let SettingSpec::Image {
        name,
        model,
        data,
        max_epochs,
        lr_scale,
    } = setting
    else {
        return Err("sweep supports image settings; use `train` for the rest".into());
    };

    let resume_dir = flags.get("resume").map(PathBuf::from);
    if let Some(dir) = &resume_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create resume dir {}: {e}", dir.display()))?;
    }
    // Cells run serially on this thread, so one thread-local profiler
    // aggregates spans across the whole grid.
    let profile_path = profile_from_flags(&flags)?;

    let mut headers = vec![format!("{name} ({})", optimizer.name())];
    headers.extend(budgets.iter().map(|b| format!("{b}%")));
    let mut rows = Vec::new();
    let mut col_values: Vec<Vec<f64>> = vec![Vec::new(); budgets.len()];
    for spec in &schedules {
        let mut row = vec![spec.name()];
        for (ci, &pct) in budgets.iter().enumerate() {
            let budget = Budget::new(max_epochs, pct);
            let marker = resume_dir
                .as_ref()
                .map(|d| d.join(sweep_done_name(name, &optimizer, spec, pct)));
            let err = match marker.as_deref().and_then(read_done_marker) {
                Some(err) => {
                    eprintln!("{} @ {budget}: {err:.2} (resumed)", spec.name());
                    err
                }
                None => {
                    let err = run_image_cell_traced(
                        model,
                        &data,
                        budget.epochs(),
                        32,
                        optimizer,
                        spec.clone(),
                        optimizer.default_lr() * lr_scale,
                        seed,
                        dtype,
                        &mut Recorder::disabled(),
                    )
                    .map_err(|e| e.to_string())?;
                    if let Some(path) = &marker {
                        write_done_marker(path, err);
                    }
                    eprintln!("{} @ {budget}: {err:.2}", spec.name());
                    err
                }
            };
            col_values[ci].push(err);
            row.push(format!("{err:.2}"));
        }
        rows.push(row);
    }
    for (ci, values) in col_values.iter().enumerate() {
        table::mark_best_per_column(&mut rows, ci + 1, values, true);
    }
    println!("{}", table::markdown(&headers, &rows));
    if let Some(path) = &profile_path {
        finish_profile(path)?;
    }
    Ok(())
}

/// `rexctl serve --data-dir DIR [--addr HOST:PORT] ...` — the HTTP job
/// server, implemented in `rex-serve` (shared with the `rexd` binary).
/// `rexctl export`: convert a training snapshot into a REXGGUF model
/// file.
pub fn export(argv: &[String]) -> i32 {
    match export_inner(argv) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    }
}

fn export_inner(argv: &[String]) -> Result<(), String> {
    let flags = Flags::parse(argv)?;
    let from = PathBuf::from(flags.require("from")?);
    let out = PathBuf::from(flags.require("out")?);
    let v = flags.get("quant").unwrap_or("f16");
    let quant = rex_tensor::DType::parse(v)
        .ok_or_else(|| format!("--quant {v:?}: expected q8_0 | f16 | f32"))?;
    if quant == rex_tensor::DType::Bf16 {
        return Err("--quant bf16 is not an export format (use q8_0 | f16 | f32)".into());
    }

    let state = TrainState::load(&from)
        .map_err(|e| format!("cannot load checkpoint {}: {e}", from.display()))?;
    // Export parameters and the inference-critical buffers (batch-norm
    // running statistics); optimizer state stays behind.
    let mut entries = state.model.clone();
    entries.extend(state.buffers.iter().cloned());
    let f32_bytes: usize = entries
        .iter()
        .map(|(_, t)| std::mem::size_of_val(t.data()))
        .sum();
    let meta = vec![
        ("source".to_owned(), from.display().to_string()),
        ("run".to_owned(), state.run.clone()),
        ("quant".to_owned(), quant.name().to_owned()),
        ("train.dtype".to_owned(), state.dtype.name().to_owned()),
        ("train.step".to_owned(), state.step.to_string()),
        (
            "backend".to_owned(),
            rex_tensor::backend::kind().to_string(),
        ),
        (
            "simd_level".to_owned(),
            rex_tensor::backend::active().simd_level().to_owned(),
        ),
    ];
    let size = rex_nn::export::export_to_path(&out, &entries, quant, &meta)
        .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    println!(
        "exported {} tensors ({} params) as {} to {}",
        entries.len(),
        entries.iter().map(|(_, t)| t.data().len()).sum::<usize>(),
        quant,
        out.display()
    );
    println!(
        "{size} bytes on disk vs {f32_bytes} bytes of f32 payload ({:.2}x)",
        f32_bytes as f64 / size.max(1) as f64
    );
    Ok(())
}

pub fn serve(argv: &[String]) -> i32 {
    match rex_serve::cli::serve_cmd(argv) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", rex_serve::cli::USAGE);
            2
        }
    }
}

/// `rexctl range-test --setting rn20-cifar10`
pub fn range_test(argv: &[String]) -> i32 {
    match range_test_inner(argv) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    }
}

fn range_test_inner(argv: &[String]) -> Result<(), String> {
    let flags = Flags::parse(argv)?;
    threads_from_flags(&flags)?;
    backend_from_flags(&flags)?;
    let seed: u64 = flags.get_or("seed", 0u64)?;
    let setting = load_setting(flags.require("setting")?, seed)?;
    let optimizer = parse_optimizer(flags.get("optimizer").unwrap_or("sgdm"))?;
    let SettingSpec::Image {
        name, model, data, ..
    } = setting
    else {
        return Err("range-test supports image settings".into());
    };
    let built = model.build(data.num_classes, seed);
    let mut rec = recorder_from_flags(&flags)?;
    let result = lr_range_test_traced(
        built.as_ref(),
        &data.train_images,
        &data.train_labels,
        optimizer,
        1e-4,
        10.0,
        120,
        32,
        seed,
        &mut rec,
    )
    .map_err(|e| e.to_string())?;
    println!("{name} ({}) range test:", optimizer.name());
    println!("  suggested initial LR: {:.4}", result.suggested_lr);
    if let Some(d) = result.diverged_at {
        println!("  diverged at LR {d:.4}");
    }
    println!("  curve points: {}", result.curve.len());
    if let Some(path) = flags.get("trace") {
        eprintln!("trace written to {path}");
    }
    Ok(())
}
