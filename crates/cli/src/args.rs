//! Tiny flag parser shared by the subcommands: `--key value` pairs.

use std::collections::BTreeMap;

use rex_core::ScheduleSpec;
use rex_train::OptimizerKind;

/// Parsed `--key value` flags.
#[derive(Debug, Default)]
pub struct Flags {
    map: BTreeMap<String, String>,
}

impl Flags {
    /// Parses flags; returns an error message for malformed input.
    pub fn parse(argv: &[String]) -> Result<Flags, String> {
        let mut map = BTreeMap::new();
        let mut i = 0;
        while i < argv.len() {
            let key = argv[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got {:?}", argv[i]))?;
            let value = argv
                .get(i + 1)
                .ok_or_else(|| format!("missing value for --{key}"))?;
            map.insert(key.to_string(), value.clone());
            i += 2;
        }
        Ok(Flags { map })
    }

    /// Raw string value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.map.get(key).map(String::as_str)
    }

    /// Parsed value with default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.map.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("bad value for --{key}: {v:?}")),
        }
    }

    /// Required value.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required --{key}"))
    }
}

/// Parses a schedule name via [`ScheduleSpec`]'s `FromStr` vocabulary.
pub fn parse_schedule(name: &str) -> Result<ScheduleSpec, String> {
    name.parse()
        .map_err(|e: rex_core::ParseScheduleError| e.to_string())
}

/// Parses an optimizer family name.
pub fn parse_optimizer(name: &str) -> Result<OptimizerKind, String> {
    match name.to_ascii_lowercase().as_str() {
        "sgdm" | "sgd" => Ok(OptimizerKind::sgdm()),
        "adam" => Ok(OptimizerKind::adam()),
        "adamw" => Ok(OptimizerKind::adamw()),
        other => Err(format!("unknown optimizer {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_flag_pairs() {
        let f = Flags::parse(&sv(&["--budget", "10", "--schedule", "rex"])).unwrap();
        assert_eq!(f.get("budget"), Some("10"));
        assert_eq!(f.get_or("budget", 0u32).unwrap(), 10);
        assert_eq!(f.get_or("missing", 7u32).unwrap(), 7);
        assert!(f.require("schedule").is_ok());
        assert!(f.require("nope").is_err());
    }

    #[test]
    fn malformed_flags_rejected() {
        assert!(Flags::parse(&sv(&["budget", "10"])).is_err());
        assert!(Flags::parse(&sv(&["--budget"])).is_err());
    }

    #[test]
    fn schedule_vocabulary() {
        assert_eq!(parse_schedule("REX").unwrap(), ScheduleSpec::Rex);
        assert_eq!(parse_schedule("step").unwrap(), ScheduleSpec::Step);
        assert!(matches!(
            parse_schedule("rex-beta=0.3").unwrap(),
            ScheduleSpec::RexBeta(b) if (b - 0.3).abs() < 1e-12
        ));
        assert!(matches!(
            parse_schedule("delayed-linear=0.5").unwrap(),
            ScheduleSpec::Delayed(_, d) if (d - 0.5).abs() < 1e-12
        ));
        assert!(parse_schedule("warp-drive").is_err());
    }

    #[test]
    fn optimizer_vocabulary() {
        assert_eq!(parse_optimizer("sgdm").unwrap().name(), "SGDM");
        assert_eq!(parse_optimizer("ADAM").unwrap().name(), "Adam");
        assert!(parse_optimizer("lion").is_err());
    }
}
