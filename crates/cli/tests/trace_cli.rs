//! `rexctl trace` end to end, against the committed golden traces.
//!
//! The committed pair pins the diff contract: the golden
//! `tests/golden/rex_b10.jsonl` against itself must match silently
//! (exit 0), and against the fixture
//! `crates/cli/tests/data/rex_b10_lr_perturbed.jsonl` — identical
//! except step 2's learning rate — must name exactly that first
//! divergent step and exit 1. (The fixture lives here, not in
//! `tests/golden/`, because that directory holds only blessed
//! trajectories and its coverage test counts every file.) A
//! `--profile` run must emit Chrome trace-event JSON that
//! `trace profile` loads and ranks.

use std::path::PathBuf;
use std::process::{Command, Output};

fn golden(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(name)
}

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data")
        .join(name)
}

fn rexctl(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rexctl"))
        .args(args)
        .output()
        .expect("rexctl must spawn")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn diff_of_identical_traces_is_silent_success() {
    let path = golden("rex_b10.jsonl");
    let out = rexctl(&[
        "trace",
        "diff",
        path.to_str().unwrap(),
        path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout_of(&out));
    assert!(
        stdout_of(&out).contains("traces match (8 events)"),
        "unexpected output: {}",
        stdout_of(&out)
    );
}

#[test]
fn diff_names_the_first_divergent_step_of_the_committed_perturbed_pair() {
    let expected = golden("rex_b10.jsonl");
    let perturbed = fixture("rex_b10_lr_perturbed.jsonl");
    let out = rexctl(&[
        "trace",
        "diff",
        expected.to_str().unwrap(),
        perturbed.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "diff must exit 1 on mismatch");
    let text = stdout_of(&out);
    // event 4 is the step-2 record; lr is the perturbed field
    assert!(
        text.contains("trace diverges at event 4 (optimizer step 2)"),
        "diff must name the first divergent event/step: {text}"
    );
    assert!(text.contains("step.lr"), "diff must name the field: {text}");
    assert!(
        text.contains("0.05"),
        "diff must show the perturbed value: {text}"
    );
}

#[test]
fn summary_reports_counts_and_sparklines_for_a_golden_trace() {
    let path = golden("rex_b10.jsonl");
    let out = rexctl(&["trace", "summary", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout_of(&out);
    assert!(text.contains("schedule REX"), "{text}");
    assert!(text.contains("8 events | 1 epochs | 4 steps"), "{text}");
    assert!(text.contains("lr"), "{text}");
    assert!(text.contains("final metric: 80"), "{text}");
}

#[test]
fn profiled_run_writes_a_chrome_trace_that_profile_ranks() {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let profile_path = dir.join(format!("rexctl_trace_cli_{pid}.json"));
    let out = rexctl(&[
        "train",
        "--setting",
        "digits-mlp",
        "--budget",
        "25",
        "--seed",
        "3",
        "--profile",
        profile_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&profile_path).unwrap();
    assert!(text.starts_with("{\"traceEvents\":["), "not a Chrome trace");

    let out = rexctl(&[
        "trace",
        "profile",
        profile_path.to_str().unwrap(),
        "--top",
        "3",
    ]);
    let _ = std::fs::remove_file(&profile_path);
    assert_eq!(out.status.code(), Some(0));
    let table = stdout_of(&out);
    assert!(table.contains("excl(ms)"), "{table}");
    // phase spans of the training loop must appear as slash paths
    assert!(table.contains("job/epoch/step"), "{table}");
    assert_eq!(
        table.lines().count(),
        5,
        "--top 3 must print header + 3 rows: {table}"
    );
}

#[test]
fn trace_without_subcommand_prints_usage() {
    let out = rexctl(&["trace"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("usage: rexctl trace summary"), "{err}");
}
