//! End-to-end crash/resume through the `rexctl` binary: a run killed by
//! the fault-injection layer (`REX_FAULTS` in the child's environment)
//! must resume from its snapshot and finish with a trace byte-identical
//! to an uninterrupted run's — including when the kill lands *during* a
//! checkpoint write, which must leave the previous snapshot intact.
//!
//! The cell is rn20-cifar10 at a 5 % budget: 2 epochs × 13 batches =
//! 26 optimizer steps, snapshots every 5 steps.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// Exit code the fault layer uses for injected kills.
const KILL_EXIT: i32 = 86;

fn workdir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rexctl_kill_{test}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs `rexctl train` on the test cell with checkpointing every 5 steps.
fn train(ckpt: &Path, trace: &Path, resume: bool, faults: Option<&str>) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_rexctl"));
    cmd.args([
        "train",
        "--setting",
        "rn20-cifar10",
        "--budget",
        "5",
        "--seed",
        "9",
        "--checkpoint-every",
        "5",
    ]);
    cmd.arg("--checkpoint").arg(ckpt);
    cmd.arg("--trace").arg(trace);
    if resume {
        cmd.arg("--resume").arg(ckpt);
    }
    match faults {
        Some(plan) => cmd.env("REX_FAULTS", plan),
        None => cmd.env_remove("REX_FAULTS"),
    };
    cmd.output().expect("rexctl must spawn")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn killed_run_resumes_to_a_byte_identical_trace() {
    let dir = workdir("basic");
    let full_trace = dir.join("full.jsonl");
    let cut_trace = dir.join("cut.jsonl");

    let out = train(&dir.join("full.state"), &full_trace, false, None);
    assert!(out.status.success(), "baseline failed: {}", stderr_of(&out));

    // killed after step 12: snapshots exist at steps 5 and 10
    let cut_ckpt = dir.join("cut.state");
    let out = train(&cut_ckpt, &cut_trace, false, Some("kill-at-step=12"));
    assert_eq!(
        out.status.code(),
        Some(KILL_EXIT),
        "kill did not fire: {}",
        stderr_of(&out)
    );
    assert!(cut_ckpt.exists(), "snapshot missing after kill");

    let out = train(&cut_ckpt, &cut_trace, true, None);
    assert!(out.status.success(), "resume failed: {}", stderr_of(&out));

    let full = std::fs::read(&full_trace).unwrap();
    let cut = std::fs::read(&cut_trace).unwrap();
    assert!(!full.is_empty() && full.ends_with(b"\n"));
    assert_eq!(
        full, cut,
        "resumed trace differs from the uninterrupted run's"
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn kill_during_checkpoint_write_leaves_the_previous_snapshot_loadable() {
    let dir = workdir("midwrite");
    let full_trace = dir.join("full.jsonl");
    let cut_trace = dir.join("cut.jsonl");

    let out = train(&dir.join("full.state"), &full_trace, false, None);
    assert!(out.status.success(), "baseline failed: {}", stderr_of(&out));

    // die halfway through the 2nd snapshot write (the step-10 checkpoint):
    // the atomic-write protocol must leave the step-5 snapshot untouched
    let cut_ckpt = dir.join("cut.state");
    let out = train(
        &cut_ckpt,
        &cut_trace,
        false,
        Some("kill-on-write=state:2:mid"),
    );
    assert_eq!(
        out.status.code(),
        Some(KILL_EXIT),
        "kill did not fire: {}",
        stderr_of(&out)
    );
    assert!(
        stderr_of(&out).contains("injected kill"),
        "unexpected stderr: {}",
        stderr_of(&out)
    );
    assert!(cut_ckpt.exists(), "previous snapshot was destroyed");

    let out = train(&cut_ckpt, &cut_trace, true, None);
    assert!(
        out.status.success(),
        "resume from the surviving snapshot failed: {}",
        stderr_of(&out)
    );
    assert_eq!(
        std::fs::read(&full_trace).unwrap(),
        std::fs::read(&cut_trace).unwrap(),
        "trace after a mid-checkpoint kill diverged"
    );
    let _ = std::fs::remove_dir_all(dir);
}

/// An injected I/O error on a checkpoint write surfaces as a clean
/// `checkpoint save` error (non-kill exit), and the target file is
/// preserved at its previous contents.
#[test]
fn io_error_on_checkpoint_write_fails_cleanly() {
    let dir = workdir("ioerr");
    let ckpt = dir.join("cut.state");
    let out = train(
        &ckpt,
        &dir.join("cut.jsonl"),
        false,
        Some("io-err-on-write=state:2"),
    );
    assert_eq!(out.status.code(), Some(2), "{}", stderr_of(&out));
    assert!(
        stderr_of(&out).contains("checkpoint"),
        "error does not name the failed action: {}",
        stderr_of(&out)
    );
    assert!(ckpt.exists(), "step-5 snapshot should survive the failure");
    let _ = std::fs::remove_dir_all(dir);
}
