//! # rex-optim — optimizers for the REX reproduction
//!
//! The two optimizer families the paper evaluates everywhere —
//! [`Sgd`] (with momentum) and [`Adam`]/AdamW — plus gradient-clipping
//! utilities.
//!
//! All optimizers expose **mutable learning rate and momentum**
//! ([`Optimizer::set_lr`], [`Optimizer::set_momentum`]) because in budgeted
//! training the schedule drives them every iteration (and OneCycle drives
//! the momentum too, per the paper's §4.1).
//!
//! ```
//! use rex_optim::{Optimizer, Sgd};
//! use rex_autograd::{Graph, Param};
//! use rex_tensor::Tensor;
//!
//! let w = Param::new("w", Tensor::from_vec(vec![1.0], &[1])?);
//! let mut opt = Sgd::new(vec![w.clone()], 0.1).with_momentum(0.9);
//! // one step of d(w^2)/dw = 2w
//! let mut g = Graph::new(true);
//! let wn = g.param(&w);
//! let sq = g.mul(wn, wn)?;
//! let loss = g.sum_all(sq)?;
//! g.backward(loss)?;
//! opt.step();
//! assert!((w.value().data()[0] - 0.8).abs() < 1e-6);
//! # Ok::<(), rex_tensor::TensorError>(())
//! ```

#![warn(missing_docs)]

use rex_autograd::Param;
use rex_tensor::{DType, Tensor};

/// Common interface of all optimizers.
///
/// An optimizer owns clones of the parameter handles it updates; `step`
/// consumes the gradients accumulated by the last backward pass and
/// `zero_grad` clears them for the next iteration.
pub trait Optimizer {
    /// Applies one update using the currently-accumulated gradients.
    fn step(&mut self);

    /// Clears all parameter gradients.
    fn zero_grad(&self);

    /// Sets the learning rate (called by the schedule every iteration).
    fn set_lr(&mut self, lr: f32);

    /// Current learning rate.
    fn lr(&self) -> f32;

    /// Sets the momentum / β₁ coefficient, if the optimizer has one.
    /// OneCycle uses this to cycle momentum inversely to the LR.
    fn set_momentum(&mut self, _momentum: f32) {}

    /// Current momentum / β₁ coefficient, if any.
    fn momentum(&self) -> Option<f32> {
        None
    }

    /// Enables/disables update-norm instrumentation. When enabled, `step`
    /// additionally accumulates the global L2 norm of the applied update,
    /// readable via [`Optimizer::last_update_norm`]. Off by default so the
    /// hot loop pays nothing.
    fn set_instrumented(&mut self, _enabled: bool) {}

    /// Global L2 norm of the update applied by the most recent `step`, when
    /// instrumentation is enabled. For Adam-family optimizers this is the
    /// adaptive update only (decoupled weight decay excluded).
    fn last_update_norm(&self) -> Option<f32> {
        None
    }

    /// Sets the parameter *storage* dtype for mixed-precision training.
    ///
    /// All within-step arithmetic stays f32 (the widened stored value is
    /// the master weight), but at the end of every step the parameter
    /// values **and** the optimizer's moment buffers are rounded through
    /// `dtype` (round-to-nearest-even), so the live state is exactly what
    /// a `dtype`-tagged checkpoint serializes — which is what makes
    /// kill→resume→finish bit-identical under f16/bf16 storage. `F32` (the
    /// default) skips rounding entirely, keeping the legacy path
    /// byte-identical. The default trait impl ignores the call.
    ///
    /// # Panics
    ///
    /// Implementations panic when `dtype` is not a trainable storage
    /// format (see [`DType::trainable`]).
    fn set_param_dtype(&mut self, _dtype: DType) {}

    /// The parameter storage dtype last set via
    /// [`Optimizer::set_param_dtype`] (`F32` when never set).
    fn param_dtype(&self) -> DType {
        DType::F32
    }

    /// The parameters being optimized.
    fn params(&self) -> &[Param];

    /// Snapshots the optimizer's internal state (velocity / moment
    /// buffers, step counters) for a full training-state checkpoint.
    fn export_state(&self) -> OptimizerState;

    /// Restores internal state captured by [`Optimizer::export_state`].
    /// After a successful import the optimizer continues bit-identically
    /// to one that never stopped.
    ///
    /// # Errors
    ///
    /// Describes the first kind/name/shape mismatch; the optimizer is
    /// left unchanged on error.
    fn import_state(&mut self, state: &OptimizerState) -> Result<(), String>;
}

/// Serializable snapshot of an optimizer's internal state: a kind tag
/// (`"sgd"` / `"adam"`), named scalars (Adam's step count `t`), and named
/// tensors keyed by slot and parameter name (`velocity:w`, `m:w`, `v:w`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OptimizerState {
    /// Optimizer family tag; imports reject a mismatching kind.
    pub kind: String,
    /// Named scalar state (e.g. `("t", steps)` for Adam).
    pub scalars: Vec<(String, f64)>,
    /// Named tensor state, one entry per `slot:param` pair.
    pub tensors: Vec<(String, Tensor)>,
}

impl OptimizerState {
    fn scalar(&self, name: &str) -> Result<f64, String> {
        self.scalars
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .ok_or_else(|| format!("optimizer state has no scalar {name:?}"))
    }

    fn tensor(&self, name: &str, like: &Tensor) -> Result<Tensor, String> {
        let t = self
            .tensors
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t)
            .ok_or_else(|| format!("optimizer state has no tensor {name:?}"))?;
        if t.shape() != like.shape() {
            return Err(format!(
                "optimizer state tensor {name:?} has shape {:?}, expected {:?}",
                t.shape(),
                like.shape()
            ));
        }
        Ok(t.clone())
    }

    fn check_kind(&self, expected: &str) -> Result<(), String> {
        if self.kind == expected {
            Ok(())
        } else {
            Err(format!(
                "optimizer state is {:?}, expected {expected:?}",
                self.kind
            ))
        }
    }
}

/// Global L2 norm of all accumulated gradients.
pub fn global_grad_norm(params: &[Param]) -> f32 {
    params
        .iter()
        .map(|p| p.grad().sq_norm())
        .sum::<f32>()
        .sqrt()
}

/// Global L2 norm of all parameter values.
pub fn global_param_norm(params: &[Param]) -> f32 {
    params
        .iter()
        .map(|p| p.value().sq_norm())
        .sum::<f32>()
        .sqrt()
}

/// Stochastic gradient descent with optional (Nesterov) momentum and L2
/// weight decay — "SGDM" throughout the paper's tables.
#[derive(Debug)]
pub struct Sgd {
    params: Vec<Param>,
    lr: f32,
    momentum: f32,
    nesterov: bool,
    weight_decay: f32,
    velocity: Vec<Tensor>,
    dtype: DType,
    instrumented: bool,
    last_update_norm: Option<f32>,
}

impl Sgd {
    /// Plain SGD over `params` with the given learning rate.
    pub fn new(params: Vec<Param>, lr: f32) -> Self {
        let velocity = params
            .iter()
            .map(|p| Tensor::zeros_like(&p.value()))
            .collect();
        Sgd {
            params,
            lr,
            momentum: 0.0,
            nesterov: false,
            velocity,
            weight_decay: 0.0,
            dtype: DType::F32,
            instrumented: false,
            last_update_norm: None,
        }
    }

    /// Enables classical momentum (the paper's default β = 0.9).
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Enables Nesterov momentum.
    pub fn nesterov(mut self) -> Self {
        self.nesterov = true;
        self
    }

    /// Enables L2 weight decay (added to the gradient).
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        self.weight_decay = weight_decay;
        self
    }
}

/// Per-parameter SGD work unit: disjoint `&mut` windows onto the value
/// and velocity storage plus an owned gradient clone, so each parameter
/// updates as an independent task on the thread pool.
struct SgdTask<'a> {
    value: &'a mut [f32],
    velocity: &'a mut [f32],
    grad: Tensor,
    update_sq: f32,
}

impl Optimizer for Sgd {
    fn step(&mut self) {
        let (lr, momentum, nesterov, weight_decay, instrumented, dtype) = (
            self.lr,
            self.momentum,
            self.nesterov,
            self.weight_decay,
            self.instrumented,
            self.dtype,
        );
        // Gradients are cloned out before the value guards are taken:
        // `Param` keeps value and grad behind one `RefCell`, so `grad()`
        // must not run while a `value_mut()` borrow is live. The guards
        // stay on this thread (Param is not Send); only the raw `&mut`
        // windows travel to the pool.
        let grads: Vec<Tensor> = self.params.iter().map(|p| p.grad()).collect();
        let mut guards: Vec<_> = self.params.iter().map(|p| p.value_mut()).collect();
        let mut tasks: Vec<SgdTask<'_>> = guards
            .iter_mut()
            .zip(self.velocity.iter_mut())
            .zip(grads)
            .map(|((value, velocity), grad)| SgdTask {
                value: value.data_mut(),
                velocity: velocity.data_mut(),
                grad,
                update_sq: 0.0,
            })
            .collect();
        // One parameter per chunk: every float op below matches the serial
        // history exactly, and the per-parameter norm partials are folded
        // in parameter order, so `step` is bitwise identical at any thread
        // count.
        rex_pool::parallel_for_slices(&mut tasks, 1, |_, _, task| {
            let t = &mut task[0];
            if weight_decay != 0.0 {
                // grad += wd * value
                for (g, &w) in t.grad.data_mut().iter_mut().zip(t.value.iter()) {
                    *g += weight_decay * w;
                }
            }
            if momentum != 0.0 {
                // v = momentum*v + grad
                for (vi, gi) in t.velocity.iter_mut().zip(t.grad.data()) {
                    *vi = momentum * *vi + gi;
                }
                if nesterov {
                    // effective grad = grad + momentum * v
                    for (g, &v) in t.grad.data_mut().iter_mut().zip(t.velocity.iter()) {
                        *g += momentum * v;
                    }
                } else {
                    t.grad.data_mut().copy_from_slice(t.velocity);
                }
            }
            if instrumented {
                t.update_sq = t.grad.sq_norm();
            }
            // value += -lr * grad_eff
            for (w, &g) in t.value.iter_mut().zip(t.grad.data()) {
                *w += -lr * g;
            }
            // mixed precision: round the stored value and velocity through
            // the storage dtype (per element, so still partition-invariant)
            if dtype != DType::F32 {
                dtype.round_slice(t.value);
                dtype.round_slice(t.velocity);
            }
        });
        if instrumented {
            let update_sq: f32 = tasks.iter().map(|t| t.update_sq).sum();
            drop(tasks);
            // the applied update is -lr * grad_eff, so scale the norm by lr
            self.last_update_norm = Some(lr.abs() * update_sq.sqrt());
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_momentum(&mut self, momentum: f32) {
        self.momentum = momentum;
    }

    fn momentum(&self) -> Option<f32> {
        Some(self.momentum)
    }

    fn set_instrumented(&mut self, enabled: bool) {
        self.instrumented = enabled;
        if !enabled {
            self.last_update_norm = None;
        }
    }

    fn last_update_norm(&self) -> Option<f32> {
        self.last_update_norm
    }

    fn set_param_dtype(&mut self, dtype: DType) {
        assert!(dtype.trainable(), "{dtype} is not a trainable dtype");
        self.dtype = dtype;
    }

    fn param_dtype(&self) -> DType {
        self.dtype
    }

    fn params(&self) -> &[Param] {
        &self.params
    }

    fn export_state(&self) -> OptimizerState {
        OptimizerState {
            kind: "sgd".to_owned(),
            scalars: Vec::new(),
            tensors: self
                .params
                .iter()
                .zip(&self.velocity)
                .map(|(p, v)| (format!("velocity:{}", p.name()), v.clone()))
                .collect(),
        }
    }

    fn import_state(&mut self, state: &OptimizerState) -> Result<(), String> {
        state.check_kind("sgd")?;
        let velocity = self
            .params
            .iter()
            .zip(&self.velocity)
            .map(|(p, old)| state.tensor(&format!("velocity:{}", p.name()), old))
            .collect::<Result<Vec<_>, _>>()?;
        self.velocity = velocity;
        Ok(())
    }
}

/// Adam / AdamW. `Adam::new` gives the coupled-L2 variant used for the
/// vision settings; [`Adam::adamw`] gives decoupled weight decay for the
/// BERT-GLUE fine-tuning setting (as in the paper).
#[derive(Debug)]
pub struct Adam {
    params: Vec<Param>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    decoupled: bool,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    t: u64,
    dtype: DType,
    instrumented: bool,
    last_update_norm: Option<f32>,
}

impl Adam {
    /// Adam with the standard defaults (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
    pub fn new(params: Vec<Param>, lr: f32) -> Self {
        let m = params
            .iter()
            .map(|p| Tensor::zeros_like(&p.value()))
            .collect();
        let v = params
            .iter()
            .map(|p| Tensor::zeros_like(&p.value()))
            .collect();
        Adam {
            params,
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            decoupled: false,
            m,
            v,
            t: 0,
            dtype: DType::F32,
            instrumented: false,
            last_update_norm: None,
        }
    }

    /// AdamW: Adam with decoupled weight decay (Loshchilov & Hutter).
    pub fn adamw(params: Vec<Param>, lr: f32, weight_decay: f32) -> Self {
        let mut a = Adam::new(params, lr);
        a.weight_decay = weight_decay;
        a.decoupled = true;
        a
    }

    /// Sets coupled L2 weight decay (added to the gradient, plain Adam).
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        self.weight_decay = weight_decay;
        self.decoupled = false;
        self
    }

    /// Overrides β₂ and ε.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

/// Per-parameter Adam work unit (see [`SgdTask`] for the borrow story).
struct AdamTask<'a> {
    value: &'a mut [f32],
    m: &'a mut [f32],
    v: &'a mut [f32],
    grad: Tensor,
    update_sq: f32,
}

impl Optimizer for Adam {
    fn step(&mut self) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (lr, beta1, beta2, eps, weight_decay, decoupled, instrumented, dtype) = (
            self.lr,
            self.beta1,
            self.beta2,
            self.eps,
            self.weight_decay,
            self.decoupled,
            self.instrumented,
            self.dtype,
        );
        let grads: Vec<Tensor> = self.params.iter().map(|p| p.grad()).collect();
        let mut guards: Vec<_> = self.params.iter().map(|p| p.value_mut()).collect();
        let mut tasks: Vec<AdamTask<'_>> = guards
            .iter_mut()
            .zip(self.m.iter_mut())
            .zip(self.v.iter_mut())
            .zip(grads)
            .map(|(((value, m), v), grad)| AdamTask {
                value: value.data_mut(),
                m: m.data_mut(),
                v: v.data_mut(),
                grad,
                update_sq: 0.0,
            })
            .collect();
        // One parameter per chunk; every per-element float op matches the
        // serial loop exactly and the norm partials fold in parameter
        // order, so the update is bitwise identical at any thread count.
        rex_pool::parallel_for_slices(&mut tasks, 1, |_, _, task| {
            let t = &mut task[0];
            if weight_decay != 0.0 && !decoupled {
                // grad += wd * value (coupled L2)
                for (g, &w) in t.grad.data_mut().iter_mut().zip(t.value.iter()) {
                    *g += weight_decay * w;
                }
            }
            for ((mi, vi), gi) in t.m.iter_mut().zip(t.v.iter_mut()).zip(t.grad.data()) {
                *mi = beta1 * *mi + (1.0 - beta1) * gi;
                *vi = beta2 * *vi + (1.0 - beta2) * gi * gi;
            }
            if weight_decay != 0.0 && decoupled {
                let decay = lr * weight_decay;
                for w in t.value.iter_mut() {
                    *w -= decay * *w;
                }
            }
            let mut update_sq = 0.0f32;
            for ((w, mi), vi) in t.value.iter_mut().zip(t.m.iter()).zip(t.v.iter()) {
                let m_hat = mi / bc1;
                let v_hat = vi / bc2;
                let delta = lr * m_hat / (v_hat.sqrt() + eps);
                if instrumented {
                    update_sq += delta * delta;
                }
                *w -= delta;
            }
            // mixed precision: round the stored value and both moment
            // buffers through the storage dtype (per element, so still
            // partition-invariant)
            if dtype != DType::F32 {
                dtype.round_slice(t.value);
                dtype.round_slice(t.m);
                dtype.round_slice(t.v);
            }
            t.update_sq = update_sq;
        });
        if instrumented {
            let update_sq: f32 = tasks.iter().map(|t| t.update_sq).sum();
            drop(tasks);
            self.last_update_norm = Some(update_sq.sqrt());
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_momentum(&mut self, momentum: f32) {
        self.beta1 = momentum;
    }

    fn momentum(&self) -> Option<f32> {
        Some(self.beta1)
    }

    fn set_instrumented(&mut self, enabled: bool) {
        self.instrumented = enabled;
        if !enabled {
            self.last_update_norm = None;
        }
    }

    fn last_update_norm(&self) -> Option<f32> {
        self.last_update_norm
    }

    fn set_param_dtype(&mut self, dtype: DType) {
        assert!(dtype.trainable(), "{dtype} is not a trainable dtype");
        self.dtype = dtype;
    }

    fn param_dtype(&self) -> DType {
        self.dtype
    }

    fn params(&self) -> &[Param] {
        &self.params
    }

    fn export_state(&self) -> OptimizerState {
        let mut tensors = Vec::with_capacity(2 * self.params.len());
        for (p, m) in self.params.iter().zip(&self.m) {
            tensors.push((format!("m:{}", p.name()), m.clone()));
        }
        for (p, v) in self.params.iter().zip(&self.v) {
            tensors.push((format!("v:{}", p.name()), v.clone()));
        }
        OptimizerState {
            kind: "adam".to_owned(),
            // t ≤ 2^53 always holds for step counts, so f64 is exact
            scalars: vec![("t".to_owned(), self.t as f64)],
            tensors,
        }
    }

    fn import_state(&mut self, state: &OptimizerState) -> Result<(), String> {
        state.check_kind("adam")?;
        let t = state.scalar("t")?;
        let m = self
            .params
            .iter()
            .zip(&self.m)
            .map(|(p, old)| state.tensor(&format!("m:{}", p.name()), old))
            .collect::<Result<Vec<_>, _>>()?;
        let v = self
            .params
            .iter()
            .zip(&self.v)
            .map(|(p, old)| state.tensor(&format!("v:{}", p.name()), old))
            .collect::<Result<Vec<_>, _>>()?;
        self.m = m;
        self.v = v;
        self.t = t as u64;
        Ok(())
    }
}

/// Rescales all gradients so their global L2 norm is at most `max_norm`;
/// returns the pre-clipping norm. Used by the transformer fine-tuning path.
pub fn clip_grad_norm(params: &[Param], max_norm: f32) -> f32 {
    let total: f32 = params.iter().map(|p| p.grad().sq_norm()).sum();
    let norm = total.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params {
            let mut g = p.grad_mut();
            for v in g.data_mut() {
                *v *= scale;
            }
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_autograd::Graph;

    fn quadratic_step(w: &Param, opt: &mut dyn Optimizer) -> f32 {
        opt.zero_grad();
        let mut g = Graph::new(true);
        let wn = g.param(w);
        let sq = g.mul(wn, wn).unwrap();
        let loss = g.sum_all(sq).unwrap();
        let lv = g.value(loss).item();
        g.backward(loss).unwrap();
        opt.step();
        lv
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let w = Param::new("w", Tensor::from_vec(vec![5.0, -3.0], &[2]).unwrap());
        let mut opt = Sgd::new(vec![w.clone()], 0.1);
        let mut last = f32::INFINITY;
        for _ in 0..50 {
            last = quadratic_step(&w, &mut opt);
        }
        assert!(last < 1e-3, "SGD failed to converge: {last}");
    }

    #[test]
    fn sgd_momentum_accelerates() {
        let run = |mom: f32, steps: usize| {
            let w = Param::new("w", Tensor::from_vec(vec![5.0], &[1]).unwrap());
            let mut opt = Sgd::new(vec![w.clone()], 0.02).with_momentum(mom);
            let mut last = 0.0;
            for _ in 0..steps {
                last = quadratic_step(&w, &mut opt);
            }
            last
        };
        assert!(run(0.9, 30) < run(0.0, 30));
    }

    #[test]
    fn nesterov_updates_differ_from_classical() {
        let mk = |nesterov: bool| {
            let w = Param::new("w", Tensor::from_vec(vec![1.0], &[1]).unwrap());
            let mut opt = Sgd::new(vec![w.clone()], 0.1).with_momentum(0.9);
            if nesterov {
                opt = opt.nesterov();
            }
            quadratic_step(&w, &mut opt);
            quadratic_step(&w, &mut opt);
            let final_w = w.value().data()[0];
            final_w
        };
        assert_ne!(mk(true), mk(false));
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let w = Param::new("w", Tensor::from_vec(vec![1.0], &[1]).unwrap());
        let mut opt = Sgd::new(vec![w.clone()], 0.1).with_weight_decay(0.5);
        // No backward: grad is zero, decay still pulls toward zero.
        opt.step();
        assert!((w.value().data()[0] - (1.0 - 0.1 * 0.5)).abs() < 1e-6);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let w = Param::new("w", Tensor::from_vec(vec![5.0, -3.0], &[2]).unwrap());
        let mut opt = Adam::new(vec![w.clone()], 0.3);
        let mut last = f32::INFINITY;
        for _ in 0..100 {
            last = quadratic_step(&w, &mut opt);
        }
        assert!(last < 1e-2, "Adam failed to converge: {last}");
    }

    #[test]
    fn adam_first_step_size_is_lr() {
        // Bias correction makes the very first Adam step ≈ lr * sign(grad).
        let w = Param::new("w", Tensor::from_vec(vec![5.0], &[1]).unwrap());
        let mut opt = Adam::new(vec![w.clone()], 0.1);
        quadratic_step(&w, &mut opt);
        assert!((w.value().data()[0] - 4.9).abs() < 1e-3);
    }

    #[test]
    fn adamw_decay_is_decoupled() {
        // With zero gradient, AdamW still decays the weight by lr*wd*w.
        let w = Param::new("w", Tensor::from_vec(vec![2.0], &[1]).unwrap());
        let mut opt = Adam::adamw(vec![w.clone()], 0.1, 0.1);
        opt.step(); // grad = 0
        assert!((w.value().data()[0] - 2.0 * (1.0 - 0.01)).abs() < 1e-5);
    }

    #[test]
    fn set_lr_and_momentum_take_effect() {
        let w = Param::new("w", Tensor::from_vec(vec![1.0], &[1]).unwrap());
        let mut opt = Sgd::new(vec![w.clone()], 0.1).with_momentum(0.9);
        opt.set_lr(0.5);
        assert_eq!(opt.lr(), 0.5);
        opt.set_momentum(0.5);
        assert_eq!(opt.momentum(), Some(0.5));

        let mut adam = Adam::new(vec![w], 0.1);
        adam.set_momentum(0.8);
        assert_eq!(adam.momentum(), Some(0.8));
    }

    #[test]
    fn clip_grad_norm_rescales() {
        let w = Param::new("w", Tensor::zeros(&[2]));
        w.accumulate_grad(&Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap());
        let norm = clip_grad_norm(std::slice::from_ref(&w), 1.0);
        assert!((norm - 5.0).abs() < 1e-6);
        let g = w.grad();
        assert!((g.sq_norm().sqrt() - 1.0).abs() < 1e-5);
        // below the threshold nothing changes
        let norm2 = clip_grad_norm(std::slice::from_ref(&w), 10.0);
        assert!((norm2 - 1.0).abs() < 1e-5);
        assert!((w.grad().sq_norm().sqrt() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn sgd_update_norm_matches_applied_update() {
        let w = Param::new("w", Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap());
        let mut opt = Sgd::new(vec![w.clone()], 0.1);
        assert_eq!(opt.last_update_norm(), None);
        opt.set_instrumented(true);
        w.accumulate_grad(&Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap());
        let before = w.value().data().to_vec();
        opt.step();
        let applied: f32 = before
            .iter()
            .zip(w.value().data())
            .map(|(b, a)| (b - a) * (b - a))
            .sum::<f32>()
            .sqrt();
        let reported = opt.last_update_norm().unwrap();
        assert!((reported - applied).abs() < 1e-6, "{reported} vs {applied}");
        assert!((reported - 0.5).abs() < 1e-6); // lr 0.1 × grad norm 5
        opt.set_instrumented(false);
        assert_eq!(opt.last_update_norm(), None);
    }

    #[test]
    fn adam_update_norm_matches_applied_update() {
        // plain Adam (no decay) so the full applied delta is the adaptive
        // update the instrumentation reports
        let w = Param::new("w", Tensor::from_vec(vec![1.0, -2.0], &[2]).unwrap());
        let mut opt = Adam::new(vec![w.clone()], 0.05);
        opt.set_instrumented(true);
        w.accumulate_grad(&Tensor::from_vec(vec![0.5, -0.25], &[2]).unwrap());
        let before = w.value().data().to_vec();
        opt.step();
        let applied: f32 = before
            .iter()
            .zip(w.value().data())
            .map(|(b, a)| (b - a) * (b - a))
            .sum::<f32>()
            .sqrt();
        let reported = opt.last_update_norm().unwrap();
        assert!((reported - applied).abs() < 1e-6, "{reported} vs {applied}");
    }

    #[test]
    fn instrumentation_is_bitwise_invisible() {
        let run = |instrumented: bool| {
            let w = Param::new("w", Tensor::from_vec(vec![5.0, -3.0], &[2]).unwrap());
            let mut opt = Adam::adamw(vec![w.clone()], 0.1, 0.01);
            opt.set_instrumented(instrumented);
            for _ in 0..5 {
                quadratic_step(&w, &mut opt);
            }
            let out = w.value().data().to_vec();
            out
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn global_norm_helpers() {
        let a = Param::new("a", Tensor::from_vec(vec![3.0], &[1]).unwrap());
        let b = Param::new("b", Tensor::from_vec(vec![4.0], &[1]).unwrap());
        a.accumulate_grad(&Tensor::from_vec(vec![1.0], &[1]).unwrap());
        b.accumulate_grad(&Tensor::from_vec(vec![2.0], &[1]).unwrap());
        let params = [a, b];
        assert!((global_param_norm(&params) - 5.0).abs() < 1e-6);
        assert!((global_grad_norm(&params) - 5.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn sgd_state_roundtrip_resumes_bit_identically() {
        let run_ref = || {
            let w = Param::new("w", Tensor::from_vec(vec![5.0, -3.0], &[2]).unwrap());
            let mut opt = Sgd::new(vec![w.clone()], 0.1)
                .with_momentum(0.9)
                .with_weight_decay(0.01);
            for _ in 0..8 {
                quadratic_step(&w, &mut opt);
            }
            let out = w.value().data().to_vec();
            out
        };

        // interrupted variant: export after 4 steps, import into a fresh
        // optimizer over the same values, finish the remaining 4
        let w = Param::new("w", Tensor::from_vec(vec![5.0, -3.0], &[2]).unwrap());
        let mut opt = Sgd::new(vec![w.clone()], 0.1)
            .with_momentum(0.9)
            .with_weight_decay(0.01);
        for _ in 0..4 {
            quadratic_step(&w, &mut opt);
        }
        let state = opt.export_state();
        assert_eq!(state.kind, "sgd");
        let mut opt2 = Sgd::new(vec![w.clone()], 0.1)
            .with_momentum(0.9)
            .with_weight_decay(0.01);
        opt2.import_state(&state).unwrap();
        for _ in 0..4 {
            quadratic_step(&w, &mut opt2);
        }
        assert_eq!(w.value().data(), &run_ref()[..]);
    }

    #[test]
    fn adam_state_roundtrip_resumes_bit_identically() {
        // the bias-correction exponent depends on t, so a resume that
        // dropped the step counter would diverge immediately
        let run_ref = || {
            let w = Param::new("w", Tensor::from_vec(vec![5.0, -3.0], &[2]).unwrap());
            let mut opt = Adam::adamw(vec![w.clone()], 0.1, 0.01);
            for _ in 0..8 {
                quadratic_step(&w, &mut opt);
            }
            let out = w.value().data().to_vec();
            out
        };

        let w = Param::new("w", Tensor::from_vec(vec![5.0, -3.0], &[2]).unwrap());
        let mut opt = Adam::adamw(vec![w.clone()], 0.1, 0.01);
        for _ in 0..4 {
            quadratic_step(&w, &mut opt);
        }
        let state = opt.export_state();
        assert_eq!(state.kind, "adam");
        assert_eq!(state.scalars, vec![("t".to_owned(), 4.0)]);
        let mut opt2 = Adam::adamw(vec![w.clone()], 0.1, 0.01);
        opt2.import_state(&state).unwrap();
        assert_eq!(opt2.steps(), 4);
        for _ in 0..4 {
            quadratic_step(&w, &mut opt2);
        }
        assert_eq!(w.value().data(), &run_ref()[..]);
    }

    #[test]
    fn import_rejects_kind_and_shape_mismatches() {
        let w = Param::new("w", Tensor::from_vec(vec![1.0], &[1]).unwrap());
        let sgd = Sgd::new(vec![w.clone()], 0.1);
        let mut adam = Adam::new(vec![w.clone()], 0.1);
        let err = adam.import_state(&sgd.export_state()).unwrap_err();
        assert!(err.contains("expected \"adam\""), "{err}");

        let wide = Param::new("w", Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap());
        let mut sgd_wide = Sgd::new(vec![wide], 0.1);
        let err = sgd_wide.import_state(&sgd.export_state()).unwrap_err();
        assert!(err.contains("shape"), "{err}");

        let other = Param::new("other", Tensor::from_vec(vec![1.0], &[1]).unwrap());
        let mut sgd_other = Sgd::new(vec![other], 0.1);
        let err = sgd_other.import_state(&sgd.export_state()).unwrap_err();
        assert!(err.contains("no tensor"), "{err}");
    }

    #[test]
    fn zero_grad_clears_all() {
        let w = Param::new("w", Tensor::zeros(&[2]));
        w.accumulate_grad(&Tensor::ones(&[2]));
        let opt = Sgd::new(vec![w.clone()], 0.1);
        opt.zero_grad();
        assert_eq!(w.grad().data(), &[0.0, 0.0]);
    }
}
