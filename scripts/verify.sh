#!/usr/bin/env bash
# Repo verification gate: format, lint, build, test, and a smoke run of the
# kernel benchmark. Everything runs with --offline — the workspace has no
# external dependencies, so a cold cargo registry must never fail it.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release --offline

echo "==> cargo test"
cargo test --workspace --offline -q

echo "==> kernel-bench --smoke"
cargo run --release --offline -p rex-bench --bin kernel-bench -- --smoke

echo "verify: OK"
