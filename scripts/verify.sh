#!/usr/bin/env bash
# Repo verification gate: format, lint, build, test, and a smoke run of the
# kernel benchmark. Everything runs with --offline — the workspace has no
# external dependencies, so a cold cargo registry must never fail it.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release --offline

echo "==> cargo test"
cargo test --workspace --offline -q

echo "==> kernel-bench --smoke"
cargo run --release --offline -p rex-bench --bin kernel-bench -- --smoke

echo "==> trace-check (golden telemetry traces + CLI --trace)"
# the golden suite in release mode: committed traces must match the
# trajectories the release build produces
cargo test --release --offline --test golden_traces -q
# the CLI --trace flag: two same-seed runs must emit identical JSONL
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
for i in a b; do
  cargo run --release --offline -p rex-cli --bin rexctl -- \
    train --setting rn20-cifar10 --budget 5 --schedule rex --seed 7 \
    --trace "$trace_dir/run_$i.jsonl" >/dev/null
done
grep -q '"ev":"step"' "$trace_dir/run_a.jsonl"
cmp "$trace_dir/run_a.jsonl" "$trace_dir/run_b.jsonl"

echo "verify: OK"
