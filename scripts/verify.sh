#!/usr/bin/env bash
# Repo verification gate: format, lint, build, test, and a smoke run of the
# kernel benchmark. Everything runs with --offline — the workspace has no
# external dependencies, so a cold cargo registry must never fail it.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp_dir="$(mktemp -d)"
trap 'rm -rf "$tmp_dir"' EXIT

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release --offline

echo "==> cargo test"
cargo test --workspace --offline -q

echo "==> multi-thread determinism (REX_NUM_THREADS=4)"
# the whole suite again with a 4-thread worker pool: every numeric result
# (including the golden telemetry traces) must be bitwise identical to
# the single-threaded run
REX_NUM_THREADS=4 cargo test --workspace --offline -q
REX_NUM_THREADS=4 cargo test --release --offline --test golden_traces -q

echo "==> kernel-bench --smoke"
# smoke numbers go to a scratch file so the committed BENCH_kernels.json
# (generated at full reps) is never clobbered by a verification run
cargo run --release --offline -p rex-bench --bin kernel-bench -- \
  --smoke --out "$tmp_dir/bench_smoke.json"
cargo run --release --offline -p rex-bench --bin kernel-bench -- \
  --smoke --threads 4 --out "$tmp_dir/bench_smoke_t4.json"

echo "==> backend matrix (forced scalar / simd dispatch)"
# the parity and golden suites again under each forced backend: the env
# override must reach every kernel, and the committed goldens must hold
# under both backends without re-blessing
for bk in scalar simd; do
  REX_BACKEND=$bk cargo test --offline -q -p rex-tensor --test kernel_parity
  REX_BACKEND=$bk cargo test --offline -q -p rex-tensor --test backend_parity
  REX_BACKEND=$bk cargo test --release --offline -q --test golden_traces
done
# the rexctl --backend flag end-to-end: a forced-scalar run must train
# and trace; the default (auto) run above already covers simd wherever a
# vector unit exists
cargo run --release --offline -p rex-cli --bin rexctl -- \
  train --setting rn20-cifar10 --budget 5 --schedule rex --seed 7 \
  --backend scalar --threads 4 --trace "$tmp_dir/run_scalar.jsonl" >/dev/null
grep -q '"ev":"step"' "$tmp_dir/run_scalar.jsonl"

echo "==> bench-guard (GEMM + quantized-matmul floors vs committed BENCH_kernels.json)"
scripts/bench_guard.sh

echo "==> trace-check (golden telemetry traces + CLI --trace)"
# the golden suite in release mode: committed traces must match the
# trajectories the release build produces
cargo test --release --offline --test golden_traces -q
# the CLI --trace flag: a 1-thread and a 4-thread same-seed run must
# emit byte-identical JSONL
cargo run --release --offline -p rex-cli --bin rexctl -- \
  train --setting rn20-cifar10 --budget 5 --schedule rex --seed 7 \
  --threads 1 --trace "$tmp_dir/run_a.jsonl" >/dev/null
cargo run --release --offline -p rex-cli --bin rexctl -- \
  train --setting rn20-cifar10 --budget 5 --schedule rex --seed 7 \
  --threads 4 --trace "$tmp_dir/run_b.jsonl" >/dev/null
grep -q '"ev":"step"' "$tmp_dir/run_a.jsonl"
cmp "$tmp_dir/run_a.jsonl" "$tmp_dir/run_b.jsonl"

echo "==> kill-and-resume (crash-safe checkpointing, 1 and 4 threads)"
# kill the run after step 12 via fault injection (exit 86), resume from
# the step-10 snapshot, and require the stitched trace to be byte-for-byte
# identical to an uninterrupted run's — at both thread counts
for t in 1 4; do
  cargo run --release --offline -p rex-cli --bin rexctl -- \
    train --setting rn20-cifar10 --budget 5 --schedule rex --seed 7 \
    --threads "$t" --checkpoint "$tmp_dir/full_$t.state" --checkpoint-every 5 \
    --trace "$tmp_dir/full_$t.jsonl" >/dev/null
  rc=0
  REX_FAULTS=kill-at-step=12 cargo run --release --offline -p rex-cli --bin rexctl -- \
    train --setting rn20-cifar10 --budget 5 --schedule rex --seed 7 \
    --threads "$t" --checkpoint "$tmp_dir/cut_$t.state" --checkpoint-every 5 \
    --trace "$tmp_dir/cut_$t.jsonl" >/dev/null 2>&1 || rc=$?
  test "$rc" -eq 86 # the injected kill's exit code
  cargo run --release --offline -p rex-cli --bin rexctl -- \
    train --setting rn20-cifar10 --budget 5 --schedule rex --seed 7 \
    --threads "$t" --checkpoint "$tmp_dir/cut_$t.state" --checkpoint-every 5 \
    --resume "$tmp_dir/cut_$t.state" --trace "$tmp_dir/cut_$t.jsonl" >/dev/null
  cmp "$tmp_dir/full_$t.jsonl" "$tmp_dir/cut_$t.jsonl"
done
cmp "$tmp_dir/full_1.jsonl" "$tmp_dir/full_4.jsonl"

echo "==> dtype matrix (--dtype f16/bf16 smoke + kill-and-resume, 1 and 4 threads)"
# mixed-precision storage obeys the same contracts as f32: a same-seed
# run is thread-count-invariant, and kill → resume → finish stitches a
# trace byte-identical to the uninterrupted run's. A dtype-mismatched
# resume must be refused.
for dt in f16 bf16; do
  for t in 1 4; do
    cargo run --release --offline -p rex-cli --bin rexctl -- \
      train --setting rn20-cifar10 --budget 5 --schedule rex --seed 7 --dtype "$dt" \
      --threads "$t" --checkpoint "$tmp_dir/${dt}_full_$t.state" --checkpoint-every 5 \
      --trace "$tmp_dir/${dt}_full_$t.jsonl" >/dev/null
    rc=0
    REX_FAULTS=kill-at-step=12 cargo run --release --offline -p rex-cli --bin rexctl -- \
      train --setting rn20-cifar10 --budget 5 --schedule rex --seed 7 --dtype "$dt" \
      --threads "$t" --checkpoint "$tmp_dir/${dt}_cut_$t.state" --checkpoint-every 5 \
      --trace "$tmp_dir/${dt}_cut_$t.jsonl" >/dev/null 2>&1 || rc=$?
    test "$rc" -eq 86
    cargo run --release --offline -p rex-cli --bin rexctl -- \
      train --setting rn20-cifar10 --budget 5 --schedule rex --seed 7 --dtype "$dt" \
      --threads "$t" --checkpoint "$tmp_dir/${dt}_cut_$t.state" --checkpoint-every 5 \
      --resume "$tmp_dir/${dt}_cut_$t.state" --trace "$tmp_dir/${dt}_cut_$t.jsonl" >/dev/null
    cmp "$tmp_dir/${dt}_full_$t.jsonl" "$tmp_dir/${dt}_cut_$t.jsonl"
  done
  cmp "$tmp_dir/${dt}_full_1.jsonl" "$tmp_dir/${dt}_full_4.jsonl"
done
# refusal: an f16 snapshot must not resume under --dtype bf16
rc=0
cargo run --release --offline -p rex-cli --bin rexctl -- \
  train --setting rn20-cifar10 --budget 5 --schedule rex --seed 7 --dtype bf16 \
  --threads 1 --resume "$tmp_dir/f16_full_1.state" >/dev/null 2>"$tmp_dir/mismatch.err" || rc=$?
test "$rc" -ne 0
grep -qi "dtype" "$tmp_dir/mismatch.err"
# and the f16 checkpoint's tensor sections halve: the whole file must be
# well under 3/4 of the f32 run's (headers are small for this model)
cargo run --release --offline -p rex-cli --bin rexctl -- \
  train --setting rn20-cifar10 --budget 5 --schedule rex --seed 7 --dtype f32 \
  --threads 1 --checkpoint "$tmp_dir/f32_ref.state" --checkpoint-every 5 >/dev/null
f32_bytes=$(wc -c < "$tmp_dir/f32_ref.state")
f16_bytes=$(wc -c < "$tmp_dir/f16_full_1.state")
test $((f16_bytes * 4)) -lt $((f32_bytes * 3))

echo "==> export (REXGGUF model files from a checkpoint)"
# every quant level round-trips through the parser (the unit tests cover
# payload equality; here we exercise the CLI end-to-end) and q8_0 comes
# in well under half the f32 file
for q in f32 f16 q8_0; do
  cargo run --release --offline -p rex-cli --bin rexctl -- \
    export --from "$tmp_dir/f32_ref.state" --out "$tmp_dir/model_$q.rexgguf" --quant "$q" >/dev/null
done
gguf_f32=$(wc -c < "$tmp_dir/model_f32.rexgguf")
gguf_q8=$(wc -c < "$tmp_dir/model_q8_0.rexgguf")
test $((gguf_q8 * 2)) -lt "$gguf_f32"

echo "==> serve (HTTP job server: codec, queue, black-box e2e)"
# the serve crate's own suites (codec + queue invariants + subprocess
# e2e), then the root-level black-box harness in release mode — the same
# binaries a deployment would run
cargo test --offline -q -p rex-serve
cargo test --release --offline -q --test serve_e2e
# kill-and-resume over HTTP at 1 and 4 pool threads: rex-faults kills
# rexd mid-job (exit 86), a restarted server must resume the job and
# finish with a trace byte-identical to an uninterrupted CLI run
for t in 1 4; do
  REX_NUM_THREADS=$t cargo test --release --offline -q --test serve_e2e \
    killed_server_resumes_job_with_identical_trace
done

echo "==> serve-bench --smoke"
# smoke load numbers go to a scratch file so the committed
# BENCH_serve.json (generated at >=200 jobs) is never clobbered
cargo run --release --offline -q -p rex-bench --bin serve-bench -- \
  --smoke --out "$tmp_dir/serve_smoke.json"

echo "==> bench-guard (GEMM floor + BENCH_serve.json integrity)"
scripts/bench_guard.sh --serve-only

echo "==> profile (span profiler + rexctl trace tooling)"
# a profiled run must leave the JSONL trace byte-identical to an
# unprofiled one (spans never pass through the Recorder), and must write
# a loadable Chrome trace-event profile
cargo run --release --offline -p rex-cli --bin rexctl -- \
  train --setting digits-mlp --budget 100 --schedule rex --seed 7 \
  --trace "$tmp_dir/prof_run.jsonl" --profile "$tmp_dir/prof.json" \
  --profile-detail kernel >/dev/null
cargo run --release --offline -p rex-cli --bin rexctl -- \
  train --setting digits-mlp --budget 100 --schedule rex --seed 7 \
  --trace "$tmp_dir/plain_run.jsonl" >/dev/null
cmp "$tmp_dir/prof_run.jsonl" "$tmp_dir/plain_run.jsonl"
head -c 16 "$tmp_dir/prof.json" | grep -q '{"traceEvents":'
# the trace toolbox end to end: summary renders, diff of a trace with
# itself is silent success, diff of a perturbed copy names the first
# divergent step and exits 1, profile ranks spans
# (grep from a file, not a pipe: grep -q exits at first match and a
# still-writing rexctl would die on EPIPE)
cargo run --release --offline -q -p rex-cli --bin rexctl -- \
  trace summary "$tmp_dir/prof_run.jsonl" >"$tmp_dir/summary.out"
grep -q "64 steps" "$tmp_dir/summary.out"
cargo run --release --offline -q -p rex-cli --bin rexctl -- \
  trace diff "$tmp_dir/prof_run.jsonl" "$tmp_dir/plain_run.jsonl" >/dev/null
sed 's/"lr":[0-9.eE+-]*/"lr":0.123/' "$tmp_dir/prof_run.jsonl" >"$tmp_dir/perturbed.jsonl"
rc=0
cargo run --release --offline -q -p rex-cli --bin rexctl -- \
  trace diff "$tmp_dir/prof_run.jsonl" "$tmp_dir/perturbed.jsonl" \
  >"$tmp_dir/diff.out" || rc=$?
test "$rc" -eq 1
grep -q "diverges" "$tmp_dir/diff.out"
cargo run --release --offline -q -p rex-cli --bin rexctl -- \
  trace profile "$tmp_dir/prof.json" --top 5 >"$tmp_dir/profile.out"
grep -q "job/epoch/step" "$tmp_dir/profile.out"

echo "==> supervised recovery (lineage fallback, torn trace, retry/watchdog/drain)"
# the lineage e2e suite: bit-flip and truncation of the newest
# checkpoint generation must fall back with a named reason and finish
# byte-identical, at 1 and 4 threads; a mid-append kill's torn trace
# line must be dropped (not fatal) on resume
cargo test --release --offline -q --test lineage_fallback
# the serve supervision e2es: a transient checkpoint I/O failure is
# retried with backoff to completion, the heartbeat watchdog halts and
# retries a stalled job, and SIGTERM drains (503 + Retry-After at the
# door, running jobs parked Queued on disk, exit 0) with a restart
# resuming to byte-identical traces
cargo test --release --offline -q -p rex-serve --test e2e \
  transient_io_failure_is_retried_and_the_job_completes
cargo test --release --offline -q -p rex-serve --test e2e \
  watchdog_halts_a_stalled_job_and_the_retry_completes
cargo test --release --offline -q -p rex-serve --test e2e \
  sigterm_drains_and_a_restart_resumes_with_identical_trace

echo "==> chaos-bench --smoke"
# a seeded mini-storm (12 short jobs; kill / io-err / corrupt / slow-io
# rounds with a clean drain): every invariant the full soak enforces,
# sized for CI. Smoke numbers go to a scratch file so the committed
# BENCH_chaos.json (generated at >=50 jobs / >=20 faults) is never
# clobbered
cargo run --release --offline -q -p rex-bench --bin chaos-bench -- \
  --smoke --out "$tmp_dir/chaos_smoke.json"

echo "==> bench-guard (BENCH_chaos.json integrity)"
scripts/bench_guard.sh --chaos-only
# profiler overhead: smoke numbers to scratch, then the 3 % floor on the
# committed BENCH_profile.json plus a fresh run
cargo run --release --offline -q -p rex-bench --bin profile-bench -- \
  --smoke --out "$tmp_dir/profile_smoke.json" >/dev/null
scripts/bench_guard.sh --profile-only

echo "verify: OK"
