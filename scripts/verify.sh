#!/usr/bin/env bash
# Repo verification gate: format, lint, build, test, and a smoke run of the
# kernel benchmark. Everything runs with --offline — the workspace has no
# external dependencies, so a cold cargo registry must never fail it.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp_dir="$(mktemp -d)"
trap 'rm -rf "$tmp_dir"' EXIT

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release --offline

echo "==> cargo test"
cargo test --workspace --offline -q

echo "==> multi-thread determinism (REX_NUM_THREADS=4)"
# the whole suite again with a 4-thread worker pool: every numeric result
# (including the golden telemetry traces) must be bitwise identical to
# the single-threaded run
REX_NUM_THREADS=4 cargo test --workspace --offline -q
REX_NUM_THREADS=4 cargo test --release --offline --test golden_traces -q

echo "==> kernel-bench --smoke"
# smoke numbers go to a scratch file so the committed BENCH_kernels.json
# (generated at full reps) is never clobbered by a verification run
cargo run --release --offline -p rex-bench --bin kernel-bench -- \
  --smoke --out "$tmp_dir/bench_smoke.json"
cargo run --release --offline -p rex-bench --bin kernel-bench -- \
  --smoke --threads 4 --out "$tmp_dir/bench_smoke_t4.json"

echo "==> trace-check (golden telemetry traces + CLI --trace)"
# the golden suite in release mode: committed traces must match the
# trajectories the release build produces
cargo test --release --offline --test golden_traces -q
# the CLI --trace flag: a 1-thread and a 4-thread same-seed run must
# emit byte-identical JSONL
cargo run --release --offline -p rex-cli --bin rexctl -- \
  train --setting rn20-cifar10 --budget 5 --schedule rex --seed 7 \
  --threads 1 --trace "$tmp_dir/run_a.jsonl" >/dev/null
cargo run --release --offline -p rex-cli --bin rexctl -- \
  train --setting rn20-cifar10 --budget 5 --schedule rex --seed 7 \
  --threads 4 --trace "$tmp_dir/run_b.jsonl" >/dev/null
grep -q '"ev":"step"' "$tmp_dir/run_a.jsonl"
cmp "$tmp_dir/run_a.jsonl" "$tmp_dir/run_b.jsonl"

echo "verify: OK"
