#!/usr/bin/env bash
# Regenerates the committed golden telemetry traces under tests/golden/
# after an *intentional* change to the training trajectory (schedule
# math, optimizer update order, data pipeline, telemetry encoding).
#
# Review the resulting diff carefully: every changed line is a changed
# training trajectory that the golden suite would otherwise have flagged.
set -euo pipefail
cd "$(dirname "$0")/.."

REX_BLESS=1 cargo test --offline --test golden_traces "$@"
echo "golden traces regenerated under tests/golden/ — review with: git diff tests/golden"
