#!/usr/bin/env bash
# Perf-regression guard for the GEMM backend: regenerates the kernel
# benchmark into a scratch file and fails if the SIMD single-thread
# matmul_256x256x256 speedup-vs-naive drops more than 10 % below the
# committed BENCH_kernels.json. The guard compares `speedup_best` —
# the ratio of *minimum* timings, measured adjacent in the same run.
# External interference (CPU steal on a shared host) can only inflate a
# sample, so the min-of-reps ratio tracks kernel capability rather than
# host weather; a real code regression shifts it, noise does not.
#
# BENCH_GUARD_REPS overrides the rep count (default 15, matching the
# committed artifact, so the min-of-reps estimators are comparable).
#
# The guard also sanity-checks the committed BENCH_serve.json (schema,
# >=200 jobs, zero dropped/duplicated ids, sane latency quantiles).
# `--serve-only` runs just that check, skipping the kernel re-run.
set -euo pipefail
cd "$(dirname "$0")/.."

serve_only=0
if [ "${1:-}" = "--serve-only" ]; then
  serve_only=1
fi

committed="BENCH_kernels.json"
serve_committed="BENCH_serve.json"
if [ "$serve_only" -eq 0 ] && [ ! -f "$committed" ]; then
  echo "bench-guard: missing committed $committed" >&2
  exit 1
fi
if [ ! -f "$serve_committed" ]; then
  echo "bench-guard: missing committed $serve_committed" >&2
  exit 1
fi
if ! command -v python3 >/dev/null; then
  echo "bench-guard: python3 is required to compare benchmark JSON" >&2
  exit 1
fi

python3 - "$serve_committed" <<'EOF'
import json
import sys

path = sys.argv[1]
with open(path) as f:
    d = json.load(f)
if d.get("schema") != "rex-serve-bench/v1":
    sys.exit(f"bench-guard: {path}: expected rex-serve-bench/v1, got {d.get('schema')!r}")
errors = []
if d.get("jobs", 0) < 200:
    errors.append(f"jobs {d.get('jobs')} < 200 (committed artifact must be a full run)")
if d.get("smoke"):
    errors.append("committed artifact is a --smoke run")
if d.get("done") != d.get("jobs"):
    errors.append(f"done {d.get('done')} != jobs {d.get('jobs')}")
if d.get("dropped") != 0:
    errors.append(f"dropped {d.get('dropped')} != 0")
if d.get("duplicated") != 0:
    errors.append(f"duplicated {d.get('duplicated')} != 0")
for section in ("accept_ms", "complete_ms"):
    q = d.get(section, {})
    p50, p99, mx = q.get("p50", 0), q.get("p99", 0), q.get("max", 0)
    if not (0 < p50 <= p99 <= mx):
        errors.append(f"{section}: expected 0 < p50 <= p99 <= max, got {q}")
if errors:
    for e in errors:
        print(f"bench-guard: {path}: {e}", file=sys.stderr)
    sys.exit(1)
print(
    f"bench-guard: serve artifact OK ({d['jobs']} jobs, "
    f"accept p99 {d['accept_ms']['p99']} ms, complete p99 {d['complete_ms']['p99']} ms)"
)
EOF

if [ "$serve_only" -eq 1 ]; then
  exit 0
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

reps="${BENCH_GUARD_REPS:-15}"
cargo run --release --offline -q -p rex-bench --bin kernel-bench -- \
  --reps "$reps" --out "$tmp/bench.json" >/dev/null

python3 - "$committed" "$tmp/bench.json" <<'EOF'
import json
import sys

def simd_1t_matmul(path):
    with open(path) as f:
        d = json.load(f)
    if d.get("schema") != "rex-kernel-bench/v3":
        sys.exit(f"bench-guard: {path}: expected rex-kernel-bench/v3, got {d.get('schema')!r}")
    for entry in d["backend_matrix"]:
        if entry["backend"] == "simd" and entry["threads"] == 1:
            for case in entry["cases"]:
                if case["name"] == "matmul_256x256x256":
                    return case["speedup_best"]
    sys.exit(f"bench-guard: {path}: no simd @ 1-thread matmul_256x256x256 entry")

committed = simd_1t_matmul(sys.argv[1])
fresh = simd_1t_matmul(sys.argv[2])
floor = 0.9 * committed
ok = fresh >= floor
print(
    f"bench-guard: simd@1T matmul speedup committed {committed:.2f}x, "
    f"fresh {fresh:.2f}x, floor {floor:.2f}x -> {'OK' if ok else 'FAIL'}"
)
sys.exit(0 if ok else 1)
EOF
