#!/usr/bin/env bash
# Perf-regression guard for the GEMM backend: regenerates the kernel
# benchmark into a scratch file and fails if the SIMD single-thread
# matmul_256x256x256 speedup-vs-naive drops more than 10 % below the
# committed BENCH_kernels.json. The guard compares `speedup_best` —
# the ratio of *minimum* timings, measured adjacent in the same run.
# External interference (CPU steal on a shared host) can only inflate a
# sample, so the min-of-reps ratio tracks kernel capability rather than
# host weather; a real code regression shifts it, noise does not.
#
# BENCH_GUARD_REPS overrides the rep count (default 15, matching the
# committed artifact, so the min-of-reps estimators are comparable).
set -euo pipefail
cd "$(dirname "$0")/.."

committed="BENCH_kernels.json"
if [ ! -f "$committed" ]; then
  echo "bench-guard: missing committed $committed" >&2
  exit 1
fi
if ! command -v python3 >/dev/null; then
  echo "bench-guard: python3 is required to compare benchmark JSON" >&2
  exit 1
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

reps="${BENCH_GUARD_REPS:-15}"
cargo run --release --offline -q -p rex-bench --bin kernel-bench -- \
  --reps "$reps" --out "$tmp/bench.json" >/dev/null

python3 - "$committed" "$tmp/bench.json" <<'EOF'
import json
import sys

def simd_1t_matmul(path):
    with open(path) as f:
        d = json.load(f)
    if d.get("schema") != "rex-kernel-bench/v3":
        sys.exit(f"bench-guard: {path}: expected rex-kernel-bench/v3, got {d.get('schema')!r}")
    for entry in d["backend_matrix"]:
        if entry["backend"] == "simd" and entry["threads"] == 1:
            for case in entry["cases"]:
                if case["name"] == "matmul_256x256x256":
                    return case["speedup_best"]
    sys.exit(f"bench-guard: {path}: no simd @ 1-thread matmul_256x256x256 entry")

committed = simd_1t_matmul(sys.argv[1])
fresh = simd_1t_matmul(sys.argv[2])
floor = 0.9 * committed
ok = fresh >= floor
print(
    f"bench-guard: simd@1T matmul speedup committed {committed:.2f}x, "
    f"fresh {fresh:.2f}x, floor {floor:.2f}x -> {'OK' if ok else 'FAIL'}"
)
sys.exit(0 if ok else 1)
EOF
