#!/usr/bin/env bash
# Perf-regression guard for the compute kernels: regenerates the kernel
# benchmark into a scratch file and fails if a guarded speedup drops more
# than 10 % below the committed BENCH_kernels.json. The guard compares
# `speedup_best` — the ratio of *minimum* timings, measured adjacent in
# the same run. External interference (CPU steal on a shared host) can
# only inflate a sample, so the min-of-reps ratio tracks kernel
# capability rather than host weather; a real code regression shifts it,
# noise does not.
#
# Guarded cases:
#   * simd single-thread matmul_256x256x256 speedup-vs-naive
#   * every quant_matmul case's qgemm-vs-dequant+GEMM speedup, which must
#     also stay above the 1.5x acceptance floor in the committed artifact
#
# BENCH_GUARD_REPS overrides the rep count (default 15, matching the
# committed artifact, so the min-of-reps estimators are comparable).
#
# The guard also sanity-checks the committed BENCH_serve.json (schema,
# >=200 jobs, zero dropped/duplicated ids, sane latency quantiles, a
# retries histogram that accounts for every job, backend provenance)
# and the committed BENCH_profile.json (schema, non-smoke, phase-detail
# profiler overhead at or below the 3 % acceptance floor, a non-empty
# phase table, backend provenance), and the committed BENCH_chaos.json
# (schema, non-smoke, >=50 jobs and >=20 scheduled faults spanning all
# four kinds, zero lost/duplicated/failed jobs, every trace identical to
# its fault-free twin, per-job retries within the retry budget, sane
# recovery-latency quantiles, backend provenance).
#
#   --serve-only    run just the serve-artifact check (no kernel re-run)
#   --quant-only    re-run the kernel bench but guard only the
#                   quantized-matmul cases (skips the GEMM floor)
#   --profile-only  check the committed profile artifact, then re-run
#                   profile-bench fresh and enforce the 3 % overhead
#                   floor on the fresh run too
#   --chaos-only    run just the chaos-soak artifact check (no re-run)
set -euo pipefail
cd "$(dirname "$0")/.."

mode=full
case "${1:-}" in
  "") ;;
  --serve-only) mode=serve ;;
  --quant-only) mode=quant ;;
  --profile-only) mode=profile ;;
  --chaos-only) mode=chaos ;;
  *)
    echo "bench-guard: unknown flag ${1:?} (expected --serve-only | --quant-only | --profile-only | --chaos-only)" >&2
    exit 2
    ;;
esac

committed="BENCH_kernels.json"
serve_committed="BENCH_serve.json"
profile_committed="BENCH_profile.json"
if [ "$mode" = "full" ] || [ "$mode" = "quant" ]; then
  if [ ! -f "$committed" ]; then
    echo "bench-guard: missing committed $committed" >&2
    exit 1
  fi
fi
if [ "$mode" = "full" ] || [ "$mode" = "serve" ]; then
  if [ ! -f "$serve_committed" ]; then
    echo "bench-guard: missing committed $serve_committed" >&2
    exit 1
  fi
fi
if [ "$mode" = "full" ] || [ "$mode" = "profile" ]; then
  if [ ! -f "$profile_committed" ]; then
    echo "bench-guard: missing committed $profile_committed" >&2
    exit 1
  fi
fi
chaos_committed="BENCH_chaos.json"
if [ "$mode" = "full" ] || [ "$mode" = "chaos" ]; then
  if [ ! -f "$chaos_committed" ]; then
    echo "bench-guard: missing committed $chaos_committed" >&2
    exit 1
  fi
fi
if ! command -v python3 >/dev/null; then
  echo "bench-guard: python3 is required to compare benchmark JSON" >&2
  exit 1
fi

if [ "$mode" = "full" ] || [ "$mode" = "chaos" ]; then
  python3 - "$chaos_committed" <<'EOF'
import json
import sys

path = sys.argv[1]
with open(path) as f:
    d = json.load(f)
if d.get("schema") != "rex-chaos-bench/v1":
    sys.exit(f"bench-guard: {path}: expected rex-chaos-bench/v1, got {d.get('schema')!r}")
errors = []
if d.get("smoke"):
    errors.append("committed artifact is a --smoke run")
if d.get("jobs", 0) < 50:
    errors.append(f"jobs {d.get('jobs')} < 50 (committed soak must be a full run)")
faults = d.get("faults", {})
if faults.get("total", 0) < 20:
    errors.append(f"faults.total {faults.get('total')} < 20")
for kind in ("kill", "io_err", "corrupt", "slow_io"):
    if faults.get(kind, 0) < 1:
        errors.append(f"no scheduled {kind} faults: the storm must span all four kinds")
for key in ("lost", "duplicated", "failed"):
    if d.get(key) != 0:
        errors.append(f"{key} {d.get(key)} != 0")
if d.get("completed", 0) < d.get("jobs", 0):
    errors.append(f"completed {d.get('completed')} < jobs {d.get('jobs')}")
if d.get("traces_identical") is not True:
    errors.append("traces_identical is not true")
if d.get("traces_checked", 0) < d.get("jobs", 0):
    errors.append(
        f"traces_checked {d.get('traces_checked')} < jobs {d.get('jobs')}"
    )
budget = d.get("retry_budget", 0)
if budget <= 0:
    errors.append("missing retry_budget")
elif d.get("max_retries_seen", 0) > budget:
    errors.append(
        f"max_retries_seen {d.get('max_retries_seen')} over the retry budget {budget}"
    )
if d.get("kills_observed", 0) < 1 or d.get("recoveries", 0) < 1:
    errors.append(
        f"soak observed {d.get('kills_observed')} kills / {d.get('recoveries')} "
        "recoveries; a chaos run must actually die and come back"
    )
q = d.get("recovery_ms", {})
p50, p99, mx = q.get("p50", 0), q.get("p99", 0), q.get("max", 0)
if not (0 < p50 <= p99 <= mx):
    errors.append(f"recovery_ms: expected 0 < p50 <= p99 <= max, got {q}")
for key in ("backend", "simd_level"):
    if not d.get(key):
        errors.append(f"missing provenance field {key!r}")
if errors:
    for e in errors:
        print(f"bench-guard: {path}: {e}", file=sys.stderr)
    sys.exit(1)
print(
    f"bench-guard: chaos artifact OK ({d['jobs']} jobs, {faults['total']} faults, "
    f"{d['kills_observed']} kills, recovery p99 {q['p99']} ms, "
    f"{d['retries_total']} retries, traces identical)"
)
EOF
fi

if [ "$mode" = "chaos" ]; then
  exit 0
fi

if [ "$mode" = "full" ] || [ "$mode" = "serve" ]; then
  python3 - "$serve_committed" <<'EOF'
import json
import sys

path = sys.argv[1]
with open(path) as f:
    d = json.load(f)
if d.get("schema") != "rex-serve-bench/v2":
    sys.exit(f"bench-guard: {path}: expected rex-serve-bench/v2, got {d.get('schema')!r}")
errors = []
if d.get("jobs", 0) < 200:
    errors.append(f"jobs {d.get('jobs')} < 200 (committed artifact must be a full run)")
if d.get("smoke"):
    errors.append("committed artifact is a --smoke run")
if d.get("done") != d.get("jobs"):
    errors.append(f"done {d.get('done')} != jobs {d.get('jobs')}")
if d.get("dropped") != 0:
    errors.append(f"dropped {d.get('dropped')} != 0")
if d.get("duplicated") != 0:
    errors.append(f"duplicated {d.get('duplicated')} != 0")
for key in ("backend", "simd_level"):
    if not d.get(key):
        errors.append(f"missing provenance field {key!r}")
hist = d.get("retries_histogram")
if not isinstance(hist, dict) or sum(hist.values()) != d.get("jobs"):
    errors.append(
        f"retries_histogram must account for every job, got {hist}"
    )
for section in ("accept_ms", "complete_ms"):
    q = d.get(section, {})
    p50, p99, mx = q.get("p50", 0), q.get("p99", 0), q.get("max", 0)
    if not (0 < p50 <= p99 <= mx):
        errors.append(f"{section}: expected 0 < p50 <= p99 <= max, got {q}")
if errors:
    for e in errors:
        print(f"bench-guard: {path}: {e}", file=sys.stderr)
    sys.exit(1)
print(
    f"bench-guard: serve artifact OK ({d['jobs']} jobs, "
    f"accept p99 {d['accept_ms']['p99']} ms, complete p99 {d['complete_ms']['p99']} ms, "
    f"{d['retries_429']} retries)"
)
EOF
fi

if [ "$mode" = "serve" ]; then
  exit 0
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

if [ "$mode" = "full" ] || [ "$mode" = "profile" ]; then
  # The committed artifact must already satisfy the floor; a fresh run
  # (min-of-reps, so steal-immune like the kernel guard) must too. The
  # overhead ratio divides two small adjacent timings, so a noise dip
  # earns one re-measurement before the guard gives up — a real
  # instrumentation regression fails both passes.
  profile_reps="${BENCH_GUARD_PROFILE_REPS:-60}"
  profile_check() {
  cargo run --release --offline -q -p rex-bench --bin profile-bench -- \
    --reps "$profile_reps" --out "$tmp/profile.json" >/dev/null
  python3 - "$profile_committed" "$tmp/profile.json" <<'EOF'
import json
import sys

FLOOR_PCT = 3.0

def load(path, committed):
    with open(path) as f:
        d = json.load(f)
    errors = []
    if d.get("schema") != "rex-profile-bench/v1":
        sys.exit(f"bench-guard: {path}: expected rex-profile-bench/v1, got {d.get('schema')!r}")
    if committed and d.get("smoke"):
        errors.append("committed artifact is a --smoke run")
    for key in ("backend", "simd_level", "threads", "reps"):
        if not d.get(key):
            errors.append(f"missing provenance field {key!r}")
    if d.get("workload", {}).get("steps", 0) <= 0:
        errors.append(f"workload ran no optimizer steps: {d.get('workload')}")
    phases = d.get("phases")
    if not phases:
        errors.append("empty phases table")
    else:
        names = {p["path"] for p in phases}
        for want in ("job", "job/epoch/step"):
            if want not in names:
                errors.append(f"phase table is missing span {want!r}")
    overhead = d.get("overhead_phase_pct")
    if overhead is None:
        errors.append("missing overhead_phase_pct")
    elif overhead > FLOOR_PCT:
        errors.append(
            f"phase-detail profiler overhead {overhead:.2f}% exceeds the {FLOOR_PCT}% floor"
        )
    if errors:
        for e in errors:
            print(f"bench-guard: {path}: {e}", file=sys.stderr)
        sys.exit(1)
    return d

c = load(sys.argv[1], committed=True)
f = load(sys.argv[2], committed=False)
print(
    "bench-guard: profile overhead committed "
    f"{c['overhead_phase_pct']:.2f}%, fresh {f['overhead_phase_pct']:.2f}%, "
    f"floor {FLOOR_PCT}% -> OK"
)
EOF
  }
  if ! profile_check; then
    echo "bench-guard: profile floor failed, re-measuring once to rule out scheduler interference" >&2
    profile_check
  fi
fi

if [ "$mode" = "profile" ]; then
  exit 0
fi

reps="${BENCH_GUARD_REPS:-15}"

# One measurement + comparison pass. A real kernel regression fails this
# deterministically; a scheduler-noise dip on a loaded single-core box
# does not, so a failed pass earns exactly one re-measurement before the
# guard gives up.
floor_check() {
  cargo run --release --offline -q -p rex-bench --bin kernel-bench -- \
    --reps "$reps" --out "$tmp/bench.json" >/dev/null

  python3 - "$committed" "$tmp/bench.json" "$mode" <<'EOF'
import json
import sys

def load(path):
    with open(path) as f:
        d = json.load(f)
    if d.get("schema") != "rex-kernel-bench/v4":
        sys.exit(f"bench-guard: {path}: expected rex-kernel-bench/v4, got {d.get('schema')!r}")
    return d

def simd_1t_matmul(d, path):
    for entry in d["backend_matrix"]:
        if entry["backend"] == "simd" and entry["threads"] == 1:
            for case in entry["cases"]:
                if case["name"] == "matmul_256x256x256":
                    return case["speedup_best"]
    sys.exit(f"bench-guard: {path}: no simd @ 1-thread matmul_256x256x256 entry")

def quant_cases(d, path):
    cases = {c["name"]: c["speedup_best"] for c in d.get("quant_matmul", [])}
    if not cases:
        sys.exit(f"bench-guard: {path}: no quant_matmul cases")
    return cases

committed = load(sys.argv[1])
fresh = load(sys.argv[2])
mode = sys.argv[3]
failed = False

if mode != "quant":
    c = simd_1t_matmul(committed, sys.argv[1])
    f = simd_1t_matmul(fresh, sys.argv[2])
    ok = f >= 0.9 * c
    failed |= not ok
    print(
        f"bench-guard: simd@1T matmul speedup committed {c:.2f}x, "
        f"fresh {f:.2f}x, floor {0.9 * c:.2f}x -> {'OK' if ok else 'FAIL'}"
    )

cq = quant_cases(committed, sys.argv[1])
fq = quant_cases(fresh, sys.argv[2])
for name, c in sorted(cq.items()):
    if c < 1.5:
        print(f"bench-guard: {name}: committed speedup {c:.2f}x below the 1.5x acceptance floor")
        failed = True
    f = fq.get(name)
    if f is None:
        print(f"bench-guard: {name}: missing from fresh run")
        failed = True
        continue
    ok = f >= 0.9 * c
    failed |= not ok
    print(
        f"bench-guard: {name} qgemm speedup committed {c:.2f}x, "
        f"fresh {f:.2f}x, floor {0.9 * c:.2f}x -> {'OK' if ok else 'FAIL'}"
    )

sys.exit(1 if failed else 0)
EOF
}

if ! floor_check; then
  echo "bench-guard: floor check failed, re-measuring once to rule out scheduler interference" >&2
  floor_check
fi
