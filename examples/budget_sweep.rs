//! Budget sweep: the paper's core experiment in miniature — every schedule
//! at every budget on one setting, printed as a paper-style table.
//!
//! ```sh
//! cargo run --release --example budget_sweep
//! ```

use rex::data::images::synth_cifar10;
use rex::eval::table;
use rex::schedules::{all_paper_schedules, ScheduleSpec};
use rex::train::tasks::{run_image_cell, ImageModel};
use rex::train::{Budget, OptimizerKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = synth_cifar10(30, 10, 3);
    let max_epochs = 12;
    let budgets: Vec<Budget> = [5u32, 25, 100]
        .into_iter()
        .map(|pct| Budget::new(max_epochs, pct))
        .collect();
    let mut schedules = vec![ScheduleSpec::None];
    schedules.extend(all_paper_schedules(2));

    println!("RN20-CIFAR10 analogue, SGDM, max {max_epochs} epochs\n");
    let mut headers = vec!["Method".to_string()];
    headers.extend(budgets.iter().map(|b| format!("{b}")));
    let mut rows = Vec::new();
    let mut col_values: Vec<Vec<f64>> = vec![Vec::new(); budgets.len()];
    for schedule in &schedules {
        let mut row = vec![schedule.name()];
        for (ci, budget) in budgets.iter().enumerate() {
            let err = run_image_cell(
                ImageModel::MicroResNet20,
                &data,
                budget.epochs(),
                32,
                OptimizerKind::sgdm(),
                schedule.clone(),
                0.1,
                11,
            )?;
            eprintln!("{} @ {budget}: {err:.2}", schedule.name());
            col_values[ci].push(err);
            row.push(format!("{err:.2}"));
        }
        rows.push(row);
    }
    for (ci, values) in col_values.iter().enumerate() {
        table::mark_best_per_column(&mut rows, ci + 1, values, true);
    }
    println!("{}", table::markdown(&headers, &rows));
    println!("(bold = best per budget, italics = top-3)");
    Ok(())
}
