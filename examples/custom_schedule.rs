//! Custom schedules: implement your own profile, compose it with any
//! sampling rate, and compare it against REX — demonstrating the paper's
//! profile × sampling-rate framework as an extensible API.
//!
//! ```sh
//! cargo run --release --example custom_schedule
//! ```

use rex::schedules::{Profile, SampledProfile, SamplingRate, Schedule, ScheduleSpec};

/// A sigmoid-shaped profile: holds high early, drops through the middle,
/// flattens near zero — a hand-rolled alternative to REX.
#[derive(Debug, Clone, Copy)]
struct SigmoidDecay {
    steepness: f64,
}

impl Profile for SigmoidDecay {
    fn at(&self, x: f64) -> f64 {
        // logistic reflected and rescaled so p(0)=1, p(1)=0
        let s = self.steepness;
        let raw = |x: f64| 1.0 / (1.0 + (s * (x - 0.5)).exp());
        let (top, bottom) = (raw(0.0), raw(1.0));
        (raw(x.clamp(0.0, 1.0)) - bottom) / (top - bottom)
    }

    fn name(&self) -> String {
        format!("Sigmoid(k={})", self.steepness)
    }
}

fn main() {
    let total = 100u64;

    // 1. A custom profile at the per-iteration sampling rate.
    let mut custom = SampledProfile::new(
        SigmoidDecay { steepness: 8.0 },
        SamplingRate::EveryIteration,
    );
    // 2. The same profile sampled only at the classic 50-75 knots.
    let mut coarse = SampledProfile::new(
        SigmoidDecay { steepness: 8.0 },
        SamplingRate::fifty_seventy_five(),
    );
    // 3. REX for comparison.
    let mut rex = ScheduleSpec::Rex.build();

    println!("progress  sigmoid  sigmoid@50-75   REX");
    for t in (0..=total).step_by(10) {
        println!(
            "  {:>3}%     {:.3}       {:.3}       {:.3}",
            t,
            custom.factor(t, total),
            coarse.factor(t, total),
            rex.factor(t, total),
        );
    }

    // Sanity properties every budget-aware profile should satisfy:
    assert!(
        (custom.factor(0, total) - 1.0).abs() < 1e-9,
        "starts at eta_0"
    );
    assert!(custom.factor(total, total) < 1e-9, "decays to ~0");
    println!("\ncustom profile verified: starts at 1.0, ends at 0.0.");
    println!("Any `Profile` composes with any `SamplingRate` — the paper's");
    println!("Table 2 experiment is this API applied to three profiles.");
}
