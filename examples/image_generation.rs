//! Image generation: train the VAE on synthetic digits under a REX
//! schedule and render reconstructions as ASCII art.
//!
//! ```sh
//! cargo run --release --example image_generation
//! ```

use rex::autograd::Graph;
use rex::data::batches;
use rex::data::digits::synth_digits;
use rex::nn::Vae;
use rex::optim::{Adam, Optimizer};
use rex::schedules::ScheduleSpec;
use rex::tensor::{Prng, Tensor};

const SIZE: usize = 12;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let train = synth_digits(600, SIZE, 0);
    let test = synth_digits(8, SIZE, 1);
    let vae = Vae::new(SIZE * SIZE, 64, 8, 42);
    let mut opt = Adam::new(vae.params(), 2e-3);
    let mut schedule = ScheduleSpec::Rex.build();
    let mut rng = Prng::new(9);

    let epochs = 30;
    let batch = 32;
    let steps_per_epoch = train.len().div_ceil(batch) as u64;
    let total = steps_per_epoch * epochs as u64;
    let labels = vec![0usize; train.len()];
    let mut t = 0u64;
    for epoch in 0..epochs {
        let mut sum = 0.0;
        let mut n = 0;
        for b in batches(&train.images, &labels, batch, Some(&mut rng)) {
            opt.set_lr(2e-3 * schedule.factor(t, total) as f32);
            t += 1;
            opt.zero_grad();
            let mut g = Graph::new(true);
            let loss = vae.elbo(&mut g, &b.images)?;
            sum += g.value(loss).item();
            n += 1;
            g.backward(loss)?;
            opt.step();
        }
        if epoch % 5 == 0 || epoch == epochs - 1 {
            println!("epoch {epoch:>2}: train ELBO {:.2}", sum / n as f32);
        }
    }

    let recon = vae.reconstruct(&test.images)?;
    println!("\noriginal (top) vs reconstruction (bottom):\n");
    for i in 0..4 {
        render_pair(&test.images, &recon, i, test.labels[i]);
    }

    // Generation from the prior.
    let mut zrng = Prng::new(1234);
    let z = zrng.normal_tensor(&[2, 8], 0.0, 1.0);
    let generated = vae.generate(&z)?;
    println!("samples from the prior:\n");
    for i in 0..2 {
        render_row(&generated, i);
        println!();
    }
    Ok(())
}

fn glyph(v: f32) -> char {
    match (v * 4.0).round() as i32 {
        4 => '█',
        3 => '▓',
        2 => '▒',
        1 => '░',
        _ => ' ',
    }
}

fn render_pair(orig: &Tensor, recon: &Tensor, idx: usize, label: usize) {
    println!("digit {label}:");
    for y in 0..SIZE {
        let mut line = String::new();
        for x in 0..SIZE {
            line.push(glyph(orig.data()[idx * SIZE * SIZE + y * SIZE + x]));
        }
        line.push_str("   ");
        for x in 0..SIZE {
            line.push(glyph(recon.data()[idx * SIZE * SIZE + y * SIZE + x]));
        }
        println!("  {line}");
    }
    println!();
}

fn render_row(t: &Tensor, idx: usize) {
    for y in 0..SIZE {
        let mut line = String::new();
        for x in 0..SIZE {
            line.push(glyph(t.data()[idx * SIZE * SIZE + y * SIZE + x]));
        }
        println!("  {line}");
    }
}
