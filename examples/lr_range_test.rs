//! LR range test: sweep the learning rate exponentially over one training
//! pass (Smith's "LR finder"), plot the smoothed loss curve as ASCII, and
//! print the suggested initial LR — the value the REX schedule would decay
//! from.
//!
//! ```sh
//! cargo run --release --example lr_range_test
//! ```

use rex::data::images::synth_cifar10;
use rex::nn::MicroResNet;
use rex::train::range_test::lr_range_test;
use rex::train::OptimizerKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = synth_cifar10(30, 10, 11);
    let model = MicroResNet::rn20_analog(10, 42);

    let result = lr_range_test(
        &model,
        &data.train_images,
        &data.train_labels,
        OptimizerKind::sgdm(),
        1e-4,
        10.0,
        120,
        32,
        7,
    )?;

    // ASCII plot: loss (y) vs log-lr (x).
    let max_loss = result.curve.iter().map(|p| p.loss).fold(0.0f64, f64::max);
    let min_loss = result.curve.iter().map(|p| p.loss).fold(f64::MAX, f64::min);
    println!("smoothed loss vs learning rate (log scale):\n");
    let rows = 14;
    for r in 0..rows {
        let level = max_loss - (max_loss - min_loss) * (r as f64 / (rows - 1) as f64);
        let mut line = String::new();
        for p in result
            .curve
            .iter()
            .step_by(result.curve.len().div_ceil(64).max(1))
        {
            line.push(if p.loss >= level { '█' } else { ' ' });
        }
        println!("{level:7.3} |{line}");
    }
    println!(
        "        {}",
        "-".repeat(
            result
                .curve
                .len()
                .div_ceil(result.curve.len().div_ceil(64).max(1))
                .min(64)
        )
    );
    println!(
        "        lr: {:.1e} ... {:.1e}",
        result.curve.first().map(|p| p.lr).unwrap_or(0.0),
        result.curve.last().map(|p| p.lr).unwrap_or(0.0),
    );

    println!("\nsuggested initial LR: {:.4}", result.suggested_lr);
    if let Some(d) = result.diverged_at {
        println!("training diverged at LR {d:.4} (sweep stopped early)");
    }
    println!("\nFeed this LR into any ScheduleSpec — e.g. ScheduleSpec::Rex —");
    println!("as the eta_0 that the profile multiplies.");
    Ok(())
}
