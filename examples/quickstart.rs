//! Quickstart: train the same model under the same tiny budget with three
//! schedules and watch REX come out ahead.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rex::data::images::synth_cifar10;
use rex::schedules::ScheduleSpec;
use rex::train::tasks::{run_image_cell, ImageModel};
use rex::train::{Budget, OptimizerKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A synthetic CIFAR-10 stand-in: 400 train / 150 test images of
    // 3x12x12, deterministic from the seed.
    let data = synth_cifar10(40, 15, 7);
    println!(
        "dataset: {} train / {} test images, {} classes",
        data.train_len(),
        data.test_len(),
        data.num_classes
    );

    // The budgeted setting: we only get 10% of the full 24-epoch run.
    let budget = Budget::new(24, 10);
    println!("budget: {budget}\n");

    for schedule in [
        ScheduleSpec::None,
        ScheduleSpec::Step,
        ScheduleSpec::Linear,
        ScheduleSpec::Rex,
    ] {
        let t0 = std::time::Instant::now();
        let err = run_image_cell(
            ImageModel::MicroResNet20,
            &data,
            budget.epochs(),
            32,
            OptimizerKind::sgdm(),
            schedule.clone(),
            0.1,
            42,
        )?;
        println!(
            "{:>16}: test error {err:5.2}%  ({:.1?})",
            schedule.name(),
            t0.elapsed()
        );
    }

    println!("\nThe step schedule wastes its budget holding a high LR; REX");
    println!("decays smoothly but holds the LR higher than linear for most");
    println!("of the run, then drops aggressively at the end.");
    Ok(())
}
