//! Quickstart: train the same model under the same tiny budget with four
//! schedules and watch REX come out ahead of step decay and no decay.
//!
//! Each cell is averaged over a handful of seeds — at this micro scale a
//! single run is noise-dominated, and the paper's claims are about the
//! average case.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rex::data::images::synth_cifar10;
use rex::schedules::ScheduleSpec;
use rex::train::tasks::{run_image_cell, ImageModel};
use rex::train::{Budget, OptimizerKind};

const SEEDS: std::ops::Range<u64> = 0..5;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A synthetic CIFAR-10 stand-in: 400 train / 150 test images of
    // 3x12x12, deterministic from the seed.
    let data = synth_cifar10(40, 15, 7);
    println!(
        "dataset: {} train / {} test images, {} classes",
        data.train_len(),
        data.test_len(),
        data.num_classes
    );

    // The budgeted setting: we only get 10% of the full 24-epoch run.
    let budget = Budget::new(24, 10);
    println!(
        "budget: {budget}, {} seeds per schedule\n",
        SEEDS.end - SEEDS.start
    );

    for schedule in [
        ScheduleSpec::None,
        ScheduleSpec::Step,
        ScheduleSpec::Linear,
        ScheduleSpec::Rex,
    ] {
        let t0 = std::time::Instant::now();
        let mut errs = Vec::new();
        for seed in SEEDS {
            errs.push(run_image_cell(
                ImageModel::MicroResNet20,
                &data,
                budget.epochs(),
                32,
                OptimizerKind::sgdm(),
                schedule.clone(),
                0.1,
                seed,
            )?);
        }
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        println!(
            "{:>16}: mean test error {mean:5.2}%  ({:.1?})",
            schedule.name(),
            t0.elapsed()
        );
    }

    println!("\nThe step schedule wastes its budget holding a high LR; REX");
    println!("decays smoothly but holds the LR higher than linear for most");
    println!("of the run, then drops aggressively at the end.");
    Ok(())
}
