//! Object detection: train the YOLO-analogue detector on synthetic scenes
//! under a budgeted REX schedule (with the paper's warmup protocol) and
//! report mAP@0.5.
//!
//! ```sh
//! cargo run --release --example object_detection
//! ```

use rex::data::scenes::synth_scenes;
use rex::nn::TinyDetector;
use rex::schedules::ScheduleSpec;
use rex::train::tasks::{detection_map, run_detection_cell};
use rex::train::{Budget, OptimizerKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let train = synth_scenes(240, 24, 5);
    let test = synth_scenes(80, 24, 6);
    println!(
        "scenes: {} train / {} test, {} classes, {}x{} grid",
        train.len(),
        test.len(),
        train.num_classes,
        train.grid,
        train.grid
    );

    // Untrained baseline.
    let untrained = TinyDetector::new(train.num_classes, 24, 0);
    println!(
        "untrained mAP@0.5: {:.1}%",
        detection_map(&untrained, &test)?
    );

    let max_epochs = 24;
    for pct in [10u32, 50, 100] {
        let budget = Budget::new(max_epochs, pct);
        let t0 = std::time::Instant::now();
        let map = run_detection_cell(
            &train,
            &test,
            budget.epochs(),
            2, // warmup epochs, excluded from the budget (paper protocol)
            16,
            OptimizerKind::adam(),
            ScheduleSpec::Rex,
            1e-3,
            42,
        )?;
        println!(
            "budget {budget}: mAP@0.5 {map:5.1}%  ({:.1?})",
            t0.elapsed()
        );
    }
    Ok(())
}
