//! # rex — budgeted training with the REX schedule, in pure Rust
//!
//! A from-scratch reproduction of *"REX: Revisiting Budgeted Training with
//! an Improved Schedule"* (Chen, Wolfe & Kyrillidis, MLSys 2022), including
//! the complete substrate the paper's evaluation needs: a tensor engine,
//! reverse-mode autodiff, neural networks, optimizers, synthetic datasets,
//! and a budgeted-training harness.
//!
//! This facade crate re-exports the workspace's public API under one roof:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`schedules`] | `rex-core` | REX + every baseline schedule; the profile × sampling-rate framework |
//! | [`tensor`] | `rex-tensor` | `Tensor`, kernels, deterministic RNG |
//! | [`autograd`] | `rex-autograd` | tape `Graph`, `Param`, gradient checking |
//! | [`nn`] | `rex-nn` | layers, models (ResNet/VGG/VAE/detector/transformer), losses |
//! | [`optim`] | `rex-optim` | SGDM, Adam, AdamW, gradient clipping |
//! | [`data`] | `rex-data` | synthetic CIFAR/STL/ImageNet/MNIST/VOC/GLUE analogues |
//! | [`train`] | `rex-train` | budgets, the training loop, per-setting drivers |
//! | [`eval`] | `rex-eval` | statistics, Top-1/Top-3 ranking, mAP, tables |
//! | [`telemetry`] | `rex-telemetry` | step records, sinks, golden-trace diffing, metrics registry |
//! | [`serve`] | `rex-serve` | the HTTP job server behind `rexctl serve` / `rexd` |
//!
//! ## The REX schedule in three lines
//!
//! ```
//! use rex::schedules::ScheduleSpec;
//!
//! let mut schedule = ScheduleSpec::Rex.build();
//! let lr = 0.1 * schedule.factor(150, 1000) as f32; // iteration 150 of 1000
//! assert!(lr > 0.1 * (1.0 - 150.0 / 1000.0)); // REX holds LR above linear
//! ```
//!
//! ## Training under a budget
//!
//! ```no_run
//! use rex::data::images::synth_cifar10;
//! use rex::schedules::ScheduleSpec;
//! use rex::train::tasks::{run_image_cell, ImageModel};
//! use rex::train::{Budget, OptimizerKind};
//!
//! let data = synth_cifar10(40, 15, 0);
//! // 10% of a 24-epoch budget, REX schedule, SGD with momentum:
//! let budget = Budget::new(24, 10);
//! let err = run_image_cell(
//!     ImageModel::MicroResNet20,
//!     &data,
//!     budget.epochs(),
//!     32,
//!     OptimizerKind::sgdm(),
//!     ScheduleSpec::Rex,
//!     0.1,
//!     42,
//! )?;
//! println!("test error at 10% budget: {err:.2}%");
//! # Ok::<(), rex::train::TrainError>(())
//! ```
//!
//! See `examples/` for runnable programs and DESIGN.md for the full
//! system inventory and experiment index.

#![warn(missing_docs)]

/// Learning-rate schedules: the paper's contribution (`rex-core`).
pub mod schedules {
    pub use rex_core::*;
}

/// Tensor engine and deterministic RNG (`rex-tensor`).
pub mod tensor {
    pub use rex_tensor::*;
}

/// Reverse-mode automatic differentiation (`rex-autograd`).
pub mod autograd {
    pub use rex_autograd::*;
}

/// Neural-network layers, models, and losses (`rex-nn`).
pub mod nn {
    pub use rex_nn::*;
}

/// Optimizers (`rex-optim`).
pub mod optim {
    pub use rex_optim::*;
}

/// Synthetic datasets (`rex-data`).
pub mod data {
    pub use rex_data::*;
}

/// Budgeted-training harness (`rex-train`).
pub mod train {
    pub use rex_train::*;
}

/// Evaluation: statistics, ranking, mAP, tables (`rex-eval`).
pub mod eval {
    pub use rex_eval::*;
}

/// Deterministic training telemetry and golden-trace diffing
/// (`rex-telemetry`).
pub mod telemetry {
    pub use rex_telemetry::*;
}

/// Deterministic fault injection and crash-consistent file writes
/// (`rex-faults`).
pub mod faults {
    pub use rex_faults::*;
}

/// Budgeted training as a service: the HTTP/1.1 job server behind
/// `rexctl serve` and `rexd` (`rex-serve`).
pub mod serve {
    pub use rex_serve::*;
}
