//! Resume-determinism contract: `train k steps → halt → resume → finish`
//! must produce a JSONL trace **byte-identical** to the uninterrupted
//! run's, for every headline schedule × optimizer cell.
//!
//! Each cell trains the digits classifier for 16 optimizer steps with a
//! checkpoint every 5 steps, halts the interrupted run after step 6
//! (mid-epoch, one step past the last snapshot — so resume must both
//! truncate the over-written trace tail and replay a partially consumed
//! epoch shuffle), resumes from the snapshot, and compares the two trace
//! files with a plain byte comparison plus the final metric.

use std::path::PathBuf;

use rex::data::digits::synth_digits;
use rex::nn::Mlp;
use rex::schedules::ScheduleSpec;
use rex::telemetry::{JsonlSink, Recorder};
use rex::tensor::Prng;
use rex::train::{
    FtConfig, OptimizerKind, TrainConfig, TrainError, TrainResult, TrainState, Trainer,
};

const SEED: u64 = 0xBEE5;
const EPOCHS: usize = 4; // 60 samples / batch 16 → 4 steps per epoch
const CHECKPOINT_EVERY: u64 = 5;
const HALT_AFTER: u64 = 6;

fn workdir(cell: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rex_resume_{cell}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One training run of the cell, tracing into `trace` (a fresh file unless
/// `ft.resume_from` is set, in which case the caller prepared the sink).
fn run_cell(
    spec: &ScheduleSpec,
    opt: OptimizerKind,
    sink: JsonlSink,
    ft: FtConfig,
) -> Result<TrainResult, TrainError> {
    run_cell_dtype(spec, opt, sink, ft, rex::tensor::DType::F32)
}

/// [`run_cell`] with an explicit parameter-storage dtype.
fn run_cell_dtype(
    spec: &ScheduleSpec,
    opt: OptimizerKind,
    sink: JsonlSink,
    ft: FtConfig,
    dtype: rex::tensor::DType,
) -> Result<TrainResult, TrainError> {
    let train = synth_digits(60, 12, 0xD1_617);
    let test = synth_digits(30, 12, 0xD1_618);
    let mut rng = Prng::new(SEED);
    let model = Mlp::new("m", &[144, 24, 10], &mut rng);
    let mut rec = Recorder::new(Box::new(sink));
    let result = Trainer::new(TrainConfig {
        epochs: EPOCHS,
        batch_size: 16,
        lr: opt.default_lr(),
        optimizer: opt,
        schedule: spec.clone(),
        augment: false,
        grad_clip: None,
        seed: SEED,
        dtype,
        ft,
    })
    .train_classifier_traced(
        &model,
        &train.images,
        &train.labels,
        &test.images,
        &test.labels,
        &mut rec,
    );
    rec.flush();
    result
}

/// Full run vs. halt-at-step-6 + resume: byte-identical traces, equal
/// final metrics.
fn check_cell(spec: &ScheduleSpec, opt: OptimizerKind, cell: &str) {
    check_cell_dtype(spec, opt, cell, rex::tensor::DType::F32);
}

/// [`check_cell`] with an explicit parameter-storage dtype; returns the
/// size in bytes of the finished run's snapshot so dtype-size tests can
/// compare storage footprints.
fn check_cell_dtype(
    spec: &ScheduleSpec,
    opt: OptimizerKind,
    cell: &str,
    dtype: rex::tensor::DType,
) -> u64 {
    let dir = workdir(cell);
    let full_trace = dir.join("full.jsonl");
    let cut_trace = dir.join("cut.jsonl");
    let full_ckpt = dir.join("full.state");
    let cut_ckpt = dir.join("cut.state");

    // uninterrupted baseline (checkpointing on, so the event streams match)
    let baseline = run_cell_dtype(
        spec,
        opt,
        JsonlSink::create(&full_trace).unwrap(),
        FtConfig {
            checkpoint_every: Some(CHECKPOINT_EVERY),
            checkpoint_path: Some(full_ckpt.clone()),
            ..FtConfig::default()
        },
        dtype,
    )
    .expect("baseline run");

    // interrupted run: snapshot at step 5, halt after step 6
    let err = run_cell_dtype(
        spec,
        opt,
        JsonlSink::create(&cut_trace).unwrap(),
        FtConfig {
            checkpoint_every: Some(CHECKPOINT_EVERY),
            checkpoint_path: Some(cut_ckpt.clone()),
            halt_after_step: Some(HALT_AFTER),
            ..FtConfig::default()
        },
        dtype,
    )
    .expect_err("interrupted run must halt");
    assert!(
        matches!(err, TrainError::Halted { step: HALT_AFTER }),
        "{err:?}"
    );

    // resume: truncate the trace to the snapshot's line cursor, finish
    let cursor = TrainState::trace_cursor(&cut_ckpt).expect("snapshot readable");
    let resumed = run_cell_dtype(
        spec,
        opt,
        JsonlSink::resume(&cut_trace, cursor).unwrap(),
        FtConfig {
            checkpoint_every: Some(CHECKPOINT_EVERY),
            checkpoint_path: Some(cut_ckpt.clone()),
            resume_from: Some(cut_ckpt),
            ..FtConfig::default()
        },
        dtype,
    )
    .expect("resumed run");

    assert_eq!(
        baseline.final_metric, resumed.final_metric,
        "{cell}: resumed run landed on a different metric"
    );
    let full = std::fs::read(&full_trace).unwrap();
    let cut = std::fs::read(&cut_trace).unwrap();
    assert!(!full.is_empty() && full.ends_with(b"\n"));
    assert_eq!(
        full, cut,
        "{cell}: resumed trace is not byte-identical to the uninterrupted run"
    );
    let ckpt_bytes = std::fs::metadata(&full_ckpt).unwrap().len();
    let _ = std::fs::remove_dir_all(dir);
    ckpt_bytes
}

#[test]
fn resume_is_byte_identical_rex_sgdm() {
    check_cell(&ScheduleSpec::Rex, OptimizerKind::sgdm(), "rex_sgdm");
}

#[test]
fn resume_is_byte_identical_rex_adam() {
    check_cell(&ScheduleSpec::Rex, OptimizerKind::adam(), "rex_adam");
}

#[test]
fn resume_is_byte_identical_linear_sgdm() {
    check_cell(&ScheduleSpec::Linear, OptimizerKind::sgdm(), "linear_sgdm");
}

#[test]
fn resume_is_byte_identical_linear_adam() {
    check_cell(&ScheduleSpec::Linear, OptimizerKind::adam(), "linear_adam");
}

#[test]
fn resume_is_byte_identical_cosine_sgdm() {
    check_cell(&ScheduleSpec::Cosine, OptimizerKind::sgdm(), "cosine_sgdm");
}

#[test]
fn resume_is_byte_identical_cosine_adam() {
    check_cell(&ScheduleSpec::Cosine, OptimizerKind::adam(), "cosine_adam");
}

/// The mixed-precision cells obey the same kill→resume→finish contract:
/// halved parameter storage changes the trajectory, never the
/// reproducibility. The f16 run's finished snapshot must also come in at
/// roughly half the f32 run's bytes — tensor sections (model, buffers,
/// optimizer master+stored pairs) dominate this model's snapshot, and
/// every stored tensor narrows from 4 to 2 bytes per element.
#[test]
fn resume_is_byte_identical_at_f16_and_checkpoint_halves() {
    let f32_bytes = check_cell_dtype(
        &ScheduleSpec::Rex,
        OptimizerKind::sgdm(),
        "rex_sgdm_f32ref",
        rex::tensor::DType::F32,
    );
    let f16_bytes = check_cell_dtype(
        &ScheduleSpec::Rex,
        OptimizerKind::sgdm(),
        "rex_sgdm_f16",
        rex::tensor::DType::F16,
    );
    let ratio = f32_bytes as f64 / f16_bytes as f64;
    assert!(
        (1.4..=2.1).contains(&ratio),
        "f16 snapshot is {f16_bytes} B vs f32 {f32_bytes} B \
         (ratio {ratio:.2}, expected ≈2 with header overhead)"
    );
}

#[test]
fn resume_is_byte_identical_at_bf16() {
    check_cell_dtype(
        &ScheduleSpec::Rex,
        OptimizerKind::adam(),
        "rex_adam_bf16",
        rex::tensor::DType::Bf16,
    );
}

/// A snapshot written at one dtype must refuse to resume at another —
/// the stored bits are not losslessly re-interpretable — and the error
/// must name both dtypes.
#[test]
fn dtype_mismatched_resume_is_refused() {
    let dir = workdir("dtype_mismatch");
    let trace = dir.join("trace.jsonl");
    let ckpt = dir.join("ckpt.state");

    let err = run_cell_dtype(
        &ScheduleSpec::Rex,
        OptimizerKind::sgdm(),
        JsonlSink::create(&trace).unwrap(),
        FtConfig {
            checkpoint_every: Some(CHECKPOINT_EVERY),
            checkpoint_path: Some(ckpt.clone()),
            halt_after_step: Some(HALT_AFTER),
            ..FtConfig::default()
        },
        rex::tensor::DType::F16,
    )
    .expect_err("interrupted run must halt");
    assert!(matches!(err, TrainError::Halted { .. }), "{err:?}");

    let cursor = TrainState::trace_cursor(&ckpt).expect("snapshot readable");
    let err = run_cell_dtype(
        &ScheduleSpec::Rex,
        OptimizerKind::sgdm(),
        JsonlSink::resume(&trace, cursor).unwrap(),
        FtConfig {
            checkpoint_every: Some(CHECKPOINT_EVERY),
            checkpoint_path: Some(ckpt.clone()),
            resume_from: Some(ckpt),
            ..FtConfig::default()
        },
        rex::tensor::DType::Bf16,
    )
    .expect_err("dtype-mismatched resume must be refused");
    let msg = err.to_string();
    assert!(
        msg.contains("dtype") && msg.contains("f16") && msg.contains("bf16"),
        "refusal must name the field and both dtypes, got: {msg}"
    );
    let _ = std::fs::remove_dir_all(dir);
}

/// Resuming the *final* snapshot of a finished run is a no-op that still
/// validates (exercises resume at an epoch boundary: step 15 is not a
/// checkpoint step, so the last snapshot sits at step 15 ∈ {5,10,15} —
/// mid-final-epoch) and the double-resume trace stays byte-identical.
#[test]
fn resuming_twice_converges_to_the_same_trace() {
    let dir = workdir("twice");
    let trace = dir.join("trace.jsonl");
    let ckpt = dir.join("ckpt.state");
    let baseline_trace = dir.join("baseline.jsonl");
    let baseline_ckpt = dir.join("baseline.state");

    run_cell(
        &ScheduleSpec::Rex,
        OptimizerKind::sgdm(),
        JsonlSink::create(&baseline_trace).unwrap(),
        FtConfig {
            checkpoint_every: Some(CHECKPOINT_EVERY),
            checkpoint_path: Some(baseline_ckpt),
            ..FtConfig::default()
        },
    )
    .expect("baseline");

    // halt at 6, resume, halt again at 11, resume again
    for halt in [Some(6), Some(11), None] {
        let resume_from = if trace.exists() {
            let cursor = TrainState::trace_cursor(&ckpt).unwrap();
            Some((cursor, ckpt.clone()))
        } else {
            None
        };
        let sink = match &resume_from {
            Some((cursor, _)) => JsonlSink::resume(&trace, *cursor).unwrap(),
            None => JsonlSink::create(&trace).unwrap(),
        };
        let result = run_cell(
            &ScheduleSpec::Rex,
            OptimizerKind::sgdm(),
            sink,
            FtConfig {
                checkpoint_every: Some(CHECKPOINT_EVERY),
                checkpoint_path: Some(ckpt.clone()),
                resume_from: resume_from.map(|(_, p)| p),
                halt_after_step: halt,
                ..FtConfig::default()
            },
        );
        match halt {
            Some(step) => {
                let err = result.expect_err("must halt");
                assert!(matches!(err, TrainError::Halted { step: s } if s == step));
            }
            None => {
                result.expect("final leg completes");
            }
        }
    }

    assert_eq!(
        std::fs::read(&baseline_trace).unwrap(),
        std::fs::read(&trace).unwrap(),
        "twice-resumed trace diverged from the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(dir);
}
