//! Workspace-level checkpoint-lineage e2e: corruption of the newest
//! generation must not strand a run.
//!
//! A `rexctl train --keep-checkpoints` run killed mid-flight leaves a
//! directory of generational `REXSTATE1` snapshots plus a `LATEST`
//! pointer. These tests damage the newest generation — bit-flips in the
//! header, body, and trailing-checksum regions, plus truncations that
//! leave a decodable-length and an undecodable-length stub — then
//! resume from the directory and assert:
//!
//! 1. the resume *names* the damage: stderr carries the `LoadReport`
//!    line (`generation NNNNN: corrupt|truncated (..), falling back`)
//!    and the generation actually resumed from;
//! 2. the finished trace is byte-identical to an uninterrupted run's —
//!    the crash, the damage, and the generation fallback are all
//!    invisible in the recorded trajectory.
//!
//! The matrix runs at 1 and 4 worker threads: trace bytes are compared
//! against a baseline produced at the same thread count, so the
//! fallback guarantee is checked under both serial and parallel
//! kernels.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::OnceLock;

use rex::faults::KILL_EXIT_CODE;

/// The profile directory this test binary runs from
/// (`target/{debug,release}`), which is also where `cargo build` puts
/// the workspace binaries.
fn profile_dir() -> PathBuf {
    let exe = std::env::current_exe().expect("current_exe");
    exe.parent()
        .and_then(Path::parent)
        .expect("profile dir")
        .to_owned()
}

/// Builds (once) and returns the path of `rexctl`.
fn rexctl() -> PathBuf {
    static BUILD: OnceLock<()> = OnceLock::new();
    let profile = profile_dir();
    BUILD.get_or_init(|| {
        let mut cmd = Command::new(env!("CARGO"));
        cmd.args(["build", "--offline", "-p", "rex-cli", "--bins"]);
        if profile.file_name().is_some_and(|n| n == "release") {
            cmd.arg("--release");
        }
        let status = cmd
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .status()
            .expect("cargo build for lineage e2e");
        assert!(status.success(), "building rexctl failed");
    });
    let path = profile.join(format!("rexctl{}", std::env::consts::EXE_SUFFIX));
    assert!(path.is_file(), "missing binary {}", path.display());
    path
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rex_lineage_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Shared run shape: 64 steps (digits-mlp at budget 100), a checkpoint
/// generation every 5 steps, 3 generations retained, killed at step 42
/// so generations 30/35/40 survive the crash.
const BUDGET: &str = "100";
const SEED: &str = "11";
const EVERY: &str = "5";
const KEEP: &str = "3";
const KILL_AT: &str = "kill-at-step=42";

fn train_cmd(lineage: &Path, trace: &Path, threads: usize, resume: bool) -> Command {
    let mut cmd = Command::new(rexctl());
    cmd.args([
        "train",
        "--setting",
        "digits-mlp",
        "--budget",
        BUDGET,
        "--schedule",
        "rex",
        "--optimizer",
        "sgdm",
        "--seed",
        SEED,
        "--checkpoint-every",
        EVERY,
        "--keep-checkpoints",
        KEEP,
        "--threads",
        &threads.to_string(),
    ]);
    cmd.arg("--checkpoint").arg(lineage);
    cmd.arg("--trace").arg(trace);
    if resume {
        cmd.arg("--resume").arg(lineage);
    }
    cmd.env_remove("REX_FAULTS");
    cmd
}

/// An uninterrupted run's trace bytes at `threads` workers.
fn baseline_trace(dir: &Path, threads: usize) -> Vec<u8> {
    let lineage = dir.join("baseline_ckpts");
    let trace = dir.join("baseline_trace.jsonl");
    let out = train_cmd(&lineage, &trace, threads, false)
        .output()
        .expect("baseline run");
    assert!(
        out.status.success(),
        "baseline run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::read(&trace).expect("baseline trace")
}

/// The generation files in `dir`, sorted by step ascending.
fn generations(dir: &Path) -> Vec<PathBuf> {
    let mut gens: Vec<(u64, PathBuf)> = std::fs::read_dir(dir)
        .expect("lineage dir")
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            let step: u64 = name
                .strip_prefix("state.")?
                .strip_suffix(".rexstate")?
                .parse()
                .ok()?;
            Some((step, e.path()))
        })
        .collect();
    gens.sort();
    gens.into_iter().map(|(_, p)| p).collect()
}

/// One way of damaging a snapshot file, and the `LoadReport` status the
/// resume must name for it.
struct Damage {
    tag: &'static str,
    expect: &'static str,
    apply: fn(&Path),
}

fn flip_at(path: &Path, pick: fn(usize) -> usize) {
    let mut bytes = std::fs::read(path).expect("snapshot bytes");
    let idx = pick(bytes.len());
    bytes[idx] ^= 0x01;
    std::fs::write(path, bytes).expect("rewrite snapshot");
}

fn truncate_to(path: &Path, pick: fn(usize) -> usize) {
    let bytes = std::fs::read(path).expect("snapshot bytes");
    let keep = pick(bytes.len());
    std::fs::write(path, &bytes[..keep]).expect("truncate snapshot");
}

/// The damage matrix: bit-flips in each region of the container, plus a
/// mid-body truncation (long enough to attempt a decode — fails the
/// trailing checksum, so it reads as corruption) and a stub truncation
/// below the minimum decodable length (named truncation).
const DAMAGES: [Damage; 5] = [
    Damage {
        tag: "bitflip_header",
        expect: "corrupt",
        apply: |p| flip_at(p, |_| 2),
    },
    Damage {
        tag: "bitflip_body",
        expect: "corrupt",
        apply: |p| flip_at(p, |len| len / 2),
    },
    Damage {
        tag: "bitflip_checksum",
        expect: "corrupt",
        apply: |p| flip_at(p, |len| len - 2),
    },
    Damage {
        tag: "truncate_body",
        expect: "corrupt",
        apply: |p| truncate_to(p, |len| len / 2),
    },
    Damage {
        tag: "truncate_stub",
        expect: "truncated",
        apply: |p| truncate_to(p, |_| 10),
    },
];

/// Crash a lineage run, damage the newest generation, resume, and check
/// both the named fallback and the final trace bytes.
fn fallback_case(dir: &Path, baseline: &[u8], damage: &Damage, threads: usize) {
    let lineage = dir.join(format!("{}_ckpts", damage.tag));
    let trace = dir.join(format!("{}_trace.jsonl", damage.tag));

    // phase 1: the run dies at step 42, after generation 40 landed
    let out = train_cmd(&lineage, &trace, threads, false)
        .env("REX_FAULTS", KILL_AT)
        .output()
        .expect("interrupted run");
    assert_eq!(
        out.status.code(),
        Some(KILL_EXIT_CODE),
        "[{}] expected the injected kill, got: {}",
        damage.tag,
        String::from_utf8_lossy(&out.stderr)
    );
    let gens = generations(&lineage);
    assert!(
        gens.len() >= 2,
        "[{}] need at least 2 generations to fall back, found {gens:?}",
        damage.tag
    );
    let newest = gens.last().unwrap();
    let survivor = &gens[gens.len() - 2];
    (damage.apply)(newest);

    // phase 2: resume must skip the damaged generation by name and land
    // on the next one back
    let out = train_cmd(&lineage, &trace, threads, true)
        .output()
        .expect("resumed run");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "[{}] resume failed: {stderr}",
        damage.tag
    );
    let expected = format!(
        "generation {}: {} (",
        newest
            .file_name()
            .unwrap()
            .to_string_lossy()
            .strip_prefix("state.")
            .unwrap()
            .strip_suffix(".rexstate")
            .unwrap(),
        damage.expect
    );
    assert!(
        stderr.contains(&expected) && stderr.contains("falling back"),
        "[{}] stderr does not name the fallback ({expected:?}): {stderr}",
        damage.tag
    );
    assert!(
        stderr.contains(&format!("resuming from {}", survivor.display())),
        "[{}] stderr does not name the surviving generation: {stderr}",
        damage.tag
    );

    // phase 3: crash + damage + fallback left no mark on the trajectory
    let resumed = std::fs::read(&trace).expect("resumed trace");
    assert_eq!(
        resumed, baseline,
        "[{}] resumed trace differs from the uninterrupted baseline",
        damage.tag
    );
}

/// A mid-append kill (`kill-on-write=trace:N:mid`) leaves the trace with
/// a torn trailing line — half a JSONL record, no newline. The resume
/// must drop the fragment with a logged warning (not fail), fall back to
/// the checkpoint cursor, and still finish byte-identical to an
/// uninterrupted run.
#[test]
fn torn_trace_trailing_line_is_dropped_on_resume() {
    let dir = fresh_dir("torn");
    let baseline = baseline_trace(&dir, 1);
    let lineage = dir.join("torn_ckpts");
    let trace = dir.join("torn_trace.jsonl");

    // phase 1: die halfway through appending the 40th trace line
    let out = train_cmd(&lineage, &trace, 1, false)
        .env("REX_FAULTS", "kill-on-write=trace:40:mid")
        .output()
        .expect("interrupted run");
    assert_eq!(
        out.status.code(),
        Some(KILL_EXIT_CODE),
        "expected the injected kill, got: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let torn = std::fs::read_to_string(&trace).expect("torn trace");
    assert!(
        !torn.is_empty() && !torn.ends_with('\n'),
        "mid-append kill should leave an unterminated trailing fragment"
    );

    // phase 2: resume tolerates the fragment and names it
    let out = train_cmd(&lineage, &trace, 1, true)
        .output()
        .expect("resumed run");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "resume failed: {stderr}");
    assert!(
        stderr.contains("dropping torn trailing line"),
        "resume did not log the torn line: {stderr}"
    );
    let resumed = std::fs::read(&trace).expect("resumed trace");
    assert_eq!(
        resumed, baseline,
        "torn-line recovery changed the trace bytes"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_newest_generation_falls_back_single_threaded() {
    let dir = fresh_dir("t1");
    let baseline = baseline_trace(&dir, 1);
    assert!(!baseline.is_empty());
    for damage in &DAMAGES {
        fallback_case(&dir, &baseline, damage, 1);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_newest_generation_falls_back_multi_threaded() {
    let dir = fresh_dir("t4");
    let baseline = baseline_trace(&dir, 4);
    assert!(!baseline.is_empty());
    for damage in &DAMAGES {
        fallback_case(&dir, &baseline, damage, 4);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
