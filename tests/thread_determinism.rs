//! Bitwise determinism of the parallel execution layer.
//!
//! The `rex-pool` contract is that chunk boundaries and combination
//! order depend only on problem size, never on thread count, so every
//! parallel op produces bit-identical results at any pool size. These
//! tests pin that contract end to end: kernels, conv, reductions, one
//! optimizer step of each family, and a full traced training run are
//! each executed under scoped pools of 1, 2, 3, and 7 threads and
//! compared for exact equality (JSONL traces byte-for-byte).

use rex::autograd::Param;
use rex::nn::Module;
use rex::optim::{Adam, Optimizer, Sgd};
use rex::schedules::ScheduleSpec;
use rex::telemetry::{JsonlSink, Recorder};
use rex::tensor::conv::{conv2d_backward, conv2d_forward, Window};
use rex::tensor::{Prng, Tensor};
use rex::train::tasks::{run_image_cell_traced, ImageModel};
use rex::train::OptimizerKind;

/// Pool sizes every case is checked at; 1 is the serial reference.
const THREAD_COUNTS: [usize; 4] = [1, 2, 3, 7];

/// Runs `f` under each pool size and asserts every result equals the
/// 1-thread one.
fn assert_same_at_all_counts<T: PartialEq + std::fmt::Debug>(f: impl Fn() -> T) {
    let reference = rex_pool::with_pool_size(1, &f);
    for &t in &THREAD_COUNTS[1..] {
        let got = rex_pool::with_pool_size(t, &f);
        assert_eq!(got, reference, "result differs at {t} threads");
    }
}

#[test]
fn gemm_is_bitwise_identical_across_thread_counts() {
    // large enough to clear the kernel layer's parallel gate (m > 64,
    // m*k*n > 2^20)
    let (m, k, n) = (192, 160, 140);
    let mut rng = Prng::new(41);
    let a = rng.normal_tensor(&[m, k], 0.0, 1.0);
    let b = rng.normal_tensor(&[k, n], 0.0, 1.0);
    assert_same_at_all_counts(|| a.matmul(&b).unwrap().data().to_vec());
}

#[test]
fn batched_gemm_is_bitwise_identical_across_thread_counts() {
    let (bs, m, k, n) = (6, 48, 64, 64);
    let mut rng = Prng::new(43);
    let a = rng.normal_tensor(&[bs, m, k], 0.0, 1.0);
    let b = rng.normal_tensor(&[bs, k, n], 0.0, 1.0);
    assert_same_at_all_counts(|| rex::tensor::ops::matmul3(&a, &b).unwrap().data().to_vec());
}

#[test]
fn conv_forward_backward_are_bitwise_identical_across_thread_counts() {
    // batch and flops both above the conv parallel gates
    let mut rng = Prng::new(47);
    let input = rng.normal_tensor(&[16, 3, 24, 24], 0.0, 1.0);
    let weight = rng.normal_tensor(&[8, 3, 3, 3], 0.0, 0.5);
    let bias = rng.normal_tensor(&[8], 0.0, 0.1);
    let win = Window {
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    assert_same_at_all_counts(|| {
        let (out, saved) = conv2d_forward(&input, &weight, Some(&bias), win).unwrap();
        let d_out = out.scale(0.37);
        let (di, dw, db) = conv2d_backward(&d_out, &weight, &saved).unwrap();
        (
            out.data().to_vec(),
            di.data().to_vec(),
            dw.data().to_vec(),
            db.data().to_vec(),
        )
    });
}

#[test]
fn reductions_are_bitwise_identical_across_thread_counts() {
    // above REDUCE_PAR_MIN (2^15), so the tree-reduction path engages
    let mut rng = Prng::new(53);
    let x = rng.normal_tensor(&[50_000], 0.0, 1.0);
    assert_same_at_all_counts(|| {
        (
            x.sum().to_bits(),
            x.sq_norm().to_bits(),
            x.max().to_bits(),
            x.min().to_bits(),
        )
    });
}

#[test]
fn elementwise_ops_are_bitwise_identical_across_thread_counts() {
    // above ELEM_PAR_MIN (2^16), so the chunked elementwise path engages
    let mut rng = Prng::new(59);
    let a = rng.normal_tensor(&[80_000], 0.0, 1.0);
    let b = rng.normal_tensor(&[80_000], 0.0, 1.0);
    assert_same_at_all_counts(|| {
        let c = a.add(&b).unwrap();
        let c = c.mul(&a).unwrap();
        let c = c.scale(1.25);
        let c = rex::tensor::ops::gelu(&c);
        c.data().to_vec()
    });
}

/// Builds a few parameters (sizes straddling typical layer shapes) with
/// deterministic values and gradients.
fn make_params(seed: u64) -> Vec<Param> {
    let mut rng = Prng::new(seed);
    [300usize, 47, 1000]
        .iter()
        .enumerate()
        .map(|(i, &len)| {
            let p = Param::new(format!("p{i}"), rng.normal_tensor(&[len], 0.0, 1.0));
            p.accumulate_grad(&rng.normal_tensor(&[len], 0.0, 0.5));
            p
        })
        .collect()
}

#[test]
fn sgd_step_is_bitwise_identical_across_thread_counts() {
    assert_same_at_all_counts(|| {
        let params = make_params(61);
        let mut opt = Sgd::new(params.clone(), 0.1)
            .with_momentum(0.9)
            .nesterov()
            .with_weight_decay(5e-4);
        opt.set_instrumented(true);
        opt.step();
        opt.step();
        let values: Vec<Vec<u32>> = params
            .iter()
            .map(|p| p.value().data().iter().map(|v| v.to_bits()).collect())
            .collect();
        (values, opt.last_update_norm().unwrap().to_bits())
    });
}

#[test]
fn adam_step_is_bitwise_identical_across_thread_counts() {
    assert_same_at_all_counts(|| {
        let params = make_params(67);
        let mut opt = Adam::adamw(params.clone(), 1e-3, 1e-2);
        opt.set_instrumented(true);
        opt.step();
        opt.step();
        let values: Vec<Vec<u32>> = params
            .iter()
            .map(|p| p.value().data().iter().map(|v| v.to_bits()).collect())
            .collect();
        (values, opt.last_update_norm().unwrap().to_bits())
    });
}

#[test]
fn model_forward_backward_is_bitwise_identical_across_thread_counts() {
    let data = rex::data::images::synth_cifar10(8, 4, 71);
    assert_same_at_all_counts(|| {
        let model = rex::nn::MicroResNet::rn20_analog(data.num_classes, 71);
        let x = Tensor::from_vec(
            data.train_images.data()[..8 * 3 * 32 * 32].to_vec(),
            &[8, 3, 32, 32],
        )
        .unwrap();
        let mut g = rex::autograd::Graph::new(true);
        let xid = g.constant(x);
        let out = model.forward(&mut g, xid).unwrap();
        let loss = g.cross_entropy(out, &data.train_labels[..8]).unwrap();
        g.backward(loss).unwrap();
        let grads: Vec<Vec<u32>> = model
            .params()
            .iter()
            .map(|p| p.grad().data().iter().map(|v| v.to_bits()).collect())
            .collect();
        grads
    });
}

#[test]
fn traced_training_run_is_byte_identical_across_thread_counts() {
    let data = rex::data::images::synth_cifar10(8, 4, 23);
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let run = |threads: usize| {
        let path = dir.join(format!("rex_thread_det_{pid}_{threads}.jsonl"));
        let err = rex_pool::with_pool_size(threads, || {
            let sink = JsonlSink::create(&path).unwrap();
            let mut rec = Recorder::new(Box::new(sink));
            let err = run_image_cell_traced(
                ImageModel::MicroResNet20,
                &data,
                1,
                8,
                OptimizerKind::sgdm(),
                ScheduleSpec::Rex,
                0.05,
                23,
                rex::tensor::DType::F32,
                &mut rec,
            )
            .unwrap();
            rec.flush();
            err
        });
        let bytes = std::fs::read(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        (err, bytes)
    };
    let (err1, trace1) = run(1);
    assert!(!trace1.is_empty(), "trace must contain step records");
    for threads in [2, 4] {
        let (err_t, trace_t) = run(threads);
        assert_eq!(err_t, err1, "final metric differs at {threads} threads");
        assert_eq!(
            trace_t, trace1,
            "JSONL trace bytes differ at {threads} threads"
        );
    }
}

#[test]
fn profiled_run_computes_identical_bytes_at_any_thread_count() {
    // The span profiler observes the training loop but must never touch
    // it: with kernel-detail profiling armed, the JSONL trace bytes and
    // final metric must equal an unprofiled run's, at every pool size —
    // and the span tree it collects must have a thread-count-invariant
    // shape (timing varies; structure must not).
    use rex::telemetry::span::{self, Detail};

    let data = rex::data::images::synth_cifar10(8, 4, 29);
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let run = |threads: usize, detail: Option<Detail>| {
        let path = dir.join(format!("rex_prof_det_{pid}_{threads}.jsonl"));
        let (err, shape) = rex_pool::with_pool_size(threads, || {
            if let Some(d) = detail {
                span::enable(d);
            }
            let sink = JsonlSink::create(&path).unwrap();
            let mut rec = Recorder::new(Box::new(sink));
            let err = run_image_cell_traced(
                ImageModel::MicroResNet20,
                &data,
                1,
                8,
                OptimizerKind::sgdm(),
                ScheduleSpec::Rex,
                0.05,
                29,
                rex::tensor::DType::F32,
                &mut rec,
            )
            .unwrap();
            rec.flush();
            (err, span::take().shape())
        });
        let bytes = std::fs::read(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        (err, bytes, shape)
    };

    let (plain_err, plain_trace, plain_shape) = run(1, None);
    assert!(
        plain_shape.is_empty(),
        "unprofiled run must record no spans"
    );
    let (ref_err, ref_trace, ref_shape) = run(1, Some(Detail::Kernel));
    assert_eq!(ref_err, plain_err, "profiling changed the final metric");
    assert_eq!(ref_trace, plain_trace, "profiling changed the trace bytes");
    assert!(
        ref_shape.iter().any(|(name, _)| name == "gemm"),
        "kernel detail must record compute spans"
    );
    for &threads in &THREAD_COUNTS[1..] {
        let (err_t, trace_t, shape_t) = run(threads, Some(Detail::Kernel));
        assert_eq!(err_t, ref_err, "final metric differs at {threads} threads");
        assert_eq!(
            trace_t, ref_trace,
            "profiled trace bytes differ at {threads} threads"
        );
        assert_eq!(
            shape_t, ref_shape,
            "span-tree shape differs at {threads} threads"
        );
    }
}
