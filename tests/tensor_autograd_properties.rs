//! Property-style tests of the numeric substrate: tensor algebra
//! identities and autograd correctness over deterministic case grids.
//!
//! These were originally proptest generators; they now sweep explicit
//! shape grids with [`Prng`]-seeded values so the suite builds fully
//! offline and every failure reproduces from its printed case.

use rex::autograd::gradcheck::check_gradients;
use rex::autograd::{Graph, Param};
use rex::tensor::{broadcast_shapes, Prng, Tensor};

fn close(a: f32, b: f32) -> bool {
    (a - b).abs() <= 1e-4 * (1.0 + a.abs().max(b.abs()))
}

/// The shape pool the old `arb_small_shape` strategy drew from:
/// 1–3 dims, each in 1..5.
fn small_shapes() -> Vec<Vec<usize>> {
    vec![
        vec![1],
        vec![4],
        vec![2, 3],
        vec![4, 4],
        vec![1, 4, 2],
        vec![3, 2, 4],
        vec![2, 2, 2],
    ]
}

/// Elementwise addition commutes and has zero as identity.
#[test]
fn add_commutative_with_identity() {
    for shape in small_shapes() {
        for seed in 0..8u64 {
            let mut rng = Prng::new(seed);
            let a = rng.normal_tensor(&shape, 0.0, 1.0);
            let b = rng.normal_tensor(&shape, 0.0, 1.0);
            let ab = a.add(&b).unwrap();
            let ba = b.add(&a).unwrap();
            assert_eq!(ab, ba, "shape {shape:?} seed {seed}");
            let z = Tensor::zeros(&shape);
            assert_eq!(a.add(&z).unwrap(), a, "shape {shape:?} seed {seed}");
        }
    }
}

/// Matmul distributes over addition: A(B + C) = AB + AC.
#[test]
fn matmul_distributes() {
    for m in 1..5 {
        for k in 1..5 {
            for n in 1..5 {
                for seed in 0..3u64 {
                    let mut rng = Prng::new(seed);
                    let a = rng.normal_tensor(&[m, k], 0.0, 1.0);
                    let b = rng.normal_tensor(&[k, n], 0.0, 1.0);
                    let c = rng.normal_tensor(&[k, n], 0.0, 1.0);
                    let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
                    let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
                    for (x, y) in lhs.data().iter().zip(rhs.data()) {
                        assert!(close(*x, *y), "({m},{k},{n}) seed {seed}: {x} vs {y}");
                    }
                }
            }
        }
    }
}

/// The fused transpose matmuls agree with explicit transposition.
/// (Tolerance-based: the fused kernels accumulate in a different order
/// than transpose-then-multiply, so bitwise equality is not guaranteed.)
#[test]
fn fused_transpose_matmuls() {
    for m in 1..5 {
        for k in 1..5 {
            for n in 1..5 {
                for seed in 0..3u64 {
                    let mut rng = Prng::new(seed);
                    let a = rng.normal_tensor(&[k, m], 0.0, 1.0);
                    let b = rng.normal_tensor(&[k, n], 0.0, 1.0);
                    let fused = a.matmul_tn(&b).unwrap();
                    let explicit = a.transpose().unwrap().matmul(&b).unwrap();
                    for (x, y) in fused.data().iter().zip(explicit.data()) {
                        assert!(close(*x, *y), "tn ({m},{k},{n}) seed {seed}: {x} vs {y}");
                    }

                    let c = rng.normal_tensor(&[m, k], 0.0, 1.0);
                    let d = rng.normal_tensor(&[n, k], 0.0, 1.0);
                    let fused = c.matmul_nt(&d).unwrap();
                    let explicit = c.matmul(&d.transpose().unwrap()).unwrap();
                    for (x, y) in fused.data().iter().zip(explicit.data()) {
                        assert!(close(*x, *y), "nt ({m},{k},{n}) seed {seed}: {x} vs {y}");
                    }
                }
            }
        }
    }
}

/// Broadcasting is symmetric in shape and sum-reduction back to either
/// operand's shape preserves the total.
#[test]
fn broadcast_and_reduce_conserve_sum() {
    for rows in 1..5 {
        for cols in 1..5 {
            for seed in 0..4u64 {
                let mut rng = Prng::new(seed);
                let a = rng.normal_tensor(&[rows, cols], 0.0, 1.0);
                let b = rng.normal_tensor(&[cols], 0.0, 1.0);
                let shape = broadcast_shapes(a.shape(), b.shape()).unwrap();
                assert_eq!(&shape, &vec![rows, cols]);
                let sum = a.add(&b).unwrap();
                // reducing the broadcast result to b's shape sums over rows
                let reduced = sum.reduce_to_shape(&[cols]).unwrap();
                let expected: f32 = sum.sum();
                assert!(
                    close(reduced.sum(), expected),
                    "({rows},{cols}) seed {seed}"
                );
            }
        }
    }
}

/// sum_axis over every axis one at a time equals the full sum.
#[test]
fn sum_axis_consistent_with_total() {
    for shape in small_shapes() {
        for seed in 0..4u64 {
            let mut rng = Prng::new(seed);
            let t = rng.normal_tensor(&shape, 0.0, 1.0);
            let total = t.sum();
            let mut cur = t.clone();
            while cur.ndim() > 0 {
                cur = cur.sum_axis(0).unwrap();
            }
            assert!(close(cur.item(), total), "shape {shape:?} seed {seed}");
        }
    }
}

/// Autograd is linear: grad of (a·f + b·g) = a·grad f + b·grad g, for
/// f = sum(w²) and g = sum(w).
#[test]
fn autograd_linearity() {
    let coeffs = [-2.0f32, -0.7, 0.0, 0.3, 1.9];
    for (ci, &a) in coeffs.iter().enumerate() {
        for &b in &coeffs {
            let mut rng = Prng::new(ci as u64);
            let w = Param::new("w", rng.normal_tensor(&[4], 0.0, 1.0));

            let combined_grad = {
                w.zero_grad();
                let mut g = Graph::new(true);
                let wn = g.param(&w);
                let sq = g.mul(wn, wn).unwrap();
                let f = g.sum_all(sq).unwrap();
                let gg = g.sum_all(wn).unwrap();
                let fa = g.scale(f, a);
                let gb = g.scale(gg, b);
                let loss = g.add(fa, gb).unwrap();
                g.backward(loss).unwrap();
                w.grad()
            };
            // analytic: a*2w + b
            for (i, &wi) in w.value().data().iter().enumerate() {
                let expected = a * 2.0 * wi + b;
                assert!(
                    close(combined_grad.data()[i], expected),
                    "a={a} b={b}: {} vs {}",
                    combined_grad.data()[i],
                    expected
                );
            }
        }
    }
}

/// Gradient of a random two-layer network checks numerically for any
/// small width.
#[test]
fn random_mlp_gradcheck() {
    for hidden in 1..4 {
        for seed in 0..4u64 {
            let mut rng = Prng::new(seed);
            let w1 = Param::new("w1", rng.normal_tensor(&[3, hidden], 0.0, 0.7));
            let w2 = Param::new("w2", rng.normal_tensor(&[hidden, 2], 0.0, 0.7));
            let x = rng.normal_tensor(&[2, 3], 0.0, 1.0);
            let result = check_gradients(
                &[w1.clone(), w2.clone()],
                |g| {
                    let xn = g.constant(x.clone());
                    let w1n = g.param(&w1);
                    let w2n = g.param(&w2);
                    let h = g.matmul(xn, w1n)?;
                    let h = g.tanh(h);
                    let out = g.matmul(h, w2n)?;
                    let sq = g.mul(out, out)?;
                    g.mean_all(sq)
                },
                1e-2,
                3e-2,
            );
            assert!(
                result.is_ok(),
                "hidden={hidden} seed={seed}: {:?}",
                result.err().map(|e| e.to_string())
            );
        }
    }
}

/// The deterministic RNG's uniform samples stay in range and differ
/// between forked streams.
#[test]
fn rng_contract() {
    for seed in (0..10_000u64).step_by(271) {
        let mut rng = Prng::new(seed);
        let mut fork = rng.fork();
        let a: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| fork.next_u64()).collect();
        assert_ne!(a, b, "fork must be independent (seed {seed})");
        for _ in 0..100 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u), "seed {seed}");
        }
    }
}
