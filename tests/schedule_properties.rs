//! Property-based tests of the schedule framework (proptest): the
//! invariants every profile, sampling rate, and wrapper must satisfy for
//! the paper's experiments to be meaningful.

use proptest::prelude::*;
use rex::schedules::{
    all_paper_schedules, Profile, ReflectedExponential, SampledProfile, SamplingRate, Schedule,
    ScheduleSpec, Table2Profile,
};

fn arb_progress() -> impl Strategy<Value = f64> {
    0.0f64..=1.0
}

proptest! {
    /// REX matches the paper's closed form everywhere.
    #[test]
    fn rex_closed_form(x in arb_progress()) {
        let rex = ReflectedExponential::default();
        let expected = (1.0 - x) / (0.5 + 0.5 * (1.0 - x));
        prop_assert!((rex.at(x) - expected).abs() < 1e-12);
    }

    /// REX dominates linear on (0,1) and both map [0,1] onto [0,1].
    #[test]
    fn rex_between_linear_and_one(x in 0.001f64..0.999) {
        let rex = ReflectedExponential::default();
        let v = rex.at(x);
        prop_assert!(v > 1.0 - x, "REX must hold LR above linear at {x}");
        prop_assert!(v < 1.0);
    }

    /// The generalised REX family is monotone in beta: smaller beta holds
    /// the learning rate higher.
    #[test]
    fn rex_beta_monotonicity(x in 0.01f64..0.99, b1 in 0.05f64..0.95, b2 in 0.05f64..0.95) {
        prop_assume!(b1 < b2);
        let lo = ReflectedExponential::with_beta(b1);
        let hi = ReflectedExponential::with_beta(b2);
        prop_assert!(lo.at(x) >= hi.at(x) - 1e-12);
    }

    /// Quantisation never moves progress forward (no peeking down the
    /// decay), for every sampling rate in the paper's Table 2.
    #[test]
    fn sampling_never_peeks_ahead(x in arb_progress(), rate_idx in 0usize..7) {
        let rate = SamplingRate::table2_rates().swap_remove(rate_idx);
        prop_assert!(rate.quantize(x) <= x + 1e-12);
    }

    /// Sampling quantisation is idempotent.
    #[test]
    fn sampling_idempotent(x in arb_progress(), rate_idx in 0usize..7) {
        let rate = SamplingRate::table2_rates().swap_remove(rate_idx);
        let q = rate.quantize(x);
        prop_assert!((rate.quantize(q) - q).abs() < 1e-12);
    }

    /// Every sampled profile (all of Table 2's grid) yields factors in
    /// [0, 1] that start at 1.
    #[test]
    fn sampled_profiles_bounded(rate_idx in 0usize..7, profile_idx in 0usize..3, t in 0u64..1000) {
        let rate = SamplingRate::table2_rates().swap_remove(rate_idx);
        let profile = Table2Profile::all()[profile_idx];
        let mut s = ScheduleSpec::Sampled(profile, rate).build();
        let f = s.factor(t, 1000);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&f), "factor {f} out of range");
        prop_assert!((s.factor(0, 1000) - 1.0).abs() < 1e-9);
    }

    /// Every paper schedule produces finite, non-negative factors over an
    /// arbitrary budget, and OneCycle momentum stays within its band.
    #[test]
    fn paper_schedules_well_behaved(t in 0u64..5000, total in 1u64..5000) {
        for spec in all_paper_schedules(3) {
            let mut s = spec.build();
            let f = s.factor(t, total);
            prop_assert!(f.is_finite() && f >= 0.0, "{}: factor {f}", s.name());
            prop_assert!(f <= 1.0 + 1e-9, "{}: factor {f} above initial LR", s.name());
            if let Some(m) = s.momentum(t, total) {
                prop_assert!((0.0..1.0).contains(&m), "{}: momentum {m}", s.name());
            }
        }
    }

    /// Budget invariance: a schedule's factor depends only on the progress
    /// fraction, so scaling (t, total) together leaves it unchanged —
    /// the property that makes budget adaptation automatic.
    #[test]
    fn factor_depends_only_on_progress(frac in 0.0f64..1.0, total in 10u64..10_000) {
        for spec in [ScheduleSpec::Rex, ScheduleSpec::Linear, ScheduleSpec::Cosine, ScheduleSpec::Step] {
            let mut s = spec.build();
            // scale (t, total) by exactly 10x so the progress fraction is
            // bit-identical — the schedule must then agree exactly
            let t1 = (frac * total as f64) as u64;
            let f1 = s.factor(t1, total);
            let f2 = s.factor(t1 * 10, total * 10);
            prop_assert!((f1 - f2).abs() < 1e-9, "{}: {f1} vs {f2} at frac {frac}", s.name());
        }
    }

    /// Delayed wrapper: identity before the delay, decayed after,
    /// continuous at the boundary.
    #[test]
    fn delayed_wrapper_contract(delay in 0.05f64..0.95, t in 0u64..1000) {
        let spec = ScheduleSpec::Delayed(Box::new(ScheduleSpec::Linear), delay);
        let mut s = spec.build();
        let total = 1000u64;
        let x = t as f64 / total as f64;
        let f = s.factor(t, total);
        if x < delay - 1e-9 {
            prop_assert!((f - 1.0).abs() < 1e-9, "held region must stay at 1, got {f} at x={x}");
        } else {
            let expected = 1.0 - (x - delay) / (1.0 - delay);
            prop_assert!((f - expected).abs() < 0.01, "decay region: {f} vs {expected}");
        }
    }

    /// Warmup wrapper: factors rise monotonically during warmup and never
    /// exceed 1.
    #[test]
    fn warmup_monotone_rise(steps in 2u64..100) {
        let spec = ScheduleSpec::WithWarmup(Box::new(ScheduleSpec::Linear), steps, 0.1);
        let mut s = spec.build();
        let total = steps + 200;
        let mut prev = 0.0;
        for t in 0..steps {
            let f = s.factor(t, total);
            prop_assert!(f >= prev - 1e-12, "warmup dipped at t={t}");
            prop_assert!(f <= 1.0 + 1e-12);
            prev = f;
        }
    }
}

#[test]
fn plateau_spec_requests_validation_feedback() {
    assert!(ScheduleSpec::DecayOnPlateau(5).needs_validation_feedback());
    assert!(!ScheduleSpec::Rex.needs_validation_feedback());
    // wrappers propagate the requirement
    let wrapped = ScheduleSpec::WithWarmup(Box::new(ScheduleSpec::DecayOnPlateau(5)), 10, 0.1);
    assert!(wrapped.needs_validation_feedback());
}

#[test]
fn schedule_names_are_unique_within_a_table() {
    let mut names: Vec<String> = all_paper_schedules(5).iter().map(|s| s.name()).collect();
    let before = names.len();
    names.sort();
    names.dedup();
    assert_eq!(names.len(), before, "duplicate schedule names would corrupt tables");
}
