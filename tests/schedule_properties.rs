//! Property-style tests of the schedule framework: the invariants every
//! profile, sampling rate, and wrapper must satisfy for the paper's
//! experiments to be meaningful.
//!
//! Originally proptest generators; now deterministic sweeps over dense
//! progress grids so the suite builds fully offline.

use rex::schedules::{
    all_paper_schedules, DecayOnPlateau, OneCycle, Profile, ReflectedExponential, SamplingRate,
    Schedule, ScheduleSpec, Table2Profile,
};

/// Dense grid over [0, 1] including both endpoints.
fn progress_grid() -> impl Iterator<Item = f64> {
    (0..=200).map(|i| i as f64 / 200.0)
}

/// REX matches the paper's closed form everywhere.
#[test]
fn rex_closed_form() {
    let rex = ReflectedExponential::default();
    for x in progress_grid() {
        let expected = (1.0 - x) / (0.5 + 0.5 * (1.0 - x));
        assert!((rex.at(x) - expected).abs() < 1e-12, "at x={x}");
    }
}

/// REX dominates linear on (0,1) and both map [0,1] onto [0,1].
#[test]
fn rex_between_linear_and_one() {
    let rex = ReflectedExponential::default();
    for x in progress_grid().filter(|x| (0.001..=0.999).contains(x)) {
        let v = rex.at(x);
        assert!(v > 1.0 - x, "REX must hold LR above linear at {x}");
        assert!(v < 1.0, "at x={x}");
    }
}

/// The generalised REX family is monotone in beta: smaller beta holds
/// the learning rate higher.
#[test]
fn rex_beta_monotonicity() {
    let betas = [0.05, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95];
    for (i, &b1) in betas.iter().enumerate() {
        for &b2 in &betas[i + 1..] {
            let lo = ReflectedExponential::with_beta(b1);
            let hi = ReflectedExponential::with_beta(b2);
            for x in progress_grid().filter(|x| (0.01..=0.99).contains(x)) {
                assert!(
                    lo.at(x) >= hi.at(x) - 1e-12,
                    "beta {b1} vs {b2} at x={x}: {} < {}",
                    lo.at(x),
                    hi.at(x)
                );
            }
        }
    }
}

/// Quantisation never moves progress forward (no peeking down the
/// decay), for every sampling rate in the paper's Table 2.
#[test]
fn sampling_never_peeks_ahead() {
    for rate_idx in 0..7 {
        let rate = SamplingRate::table2_rates().swap_remove(rate_idx);
        for x in progress_grid() {
            assert!(rate.quantize(x) <= x + 1e-12, "rate {rate_idx} at x={x}");
        }
    }
}

/// Sampling quantisation is idempotent.
#[test]
fn sampling_idempotent() {
    for rate_idx in 0..7 {
        let rate = SamplingRate::table2_rates().swap_remove(rate_idx);
        for x in progress_grid() {
            let q = rate.quantize(x);
            assert!(
                (rate.quantize(q) - q).abs() < 1e-12,
                "rate {rate_idx} at x={x}"
            );
        }
    }
}

/// Every sampled profile (all of Table 2's grid) yields factors in
/// [0, 1] that start at 1.
#[test]
fn sampled_profiles_bounded() {
    for rate_idx in 0..7 {
        for profile_idx in 0..3 {
            let rate = SamplingRate::table2_rates().swap_remove(rate_idx);
            let profile = Table2Profile::all()[profile_idx];
            let mut s = ScheduleSpec::Sampled(profile, rate).build();
            for t in (0..1000).step_by(13) {
                let f = s.factor(t, 1000);
                assert!(
                    (0.0..=1.0 + 1e-12).contains(&f),
                    "rate {rate_idx} profile {profile_idx} t={t}: factor {f} out of range"
                );
            }
            assert!((s.factor(0, 1000) - 1.0).abs() < 1e-9);
        }
    }
}

/// Every paper schedule produces finite, non-negative factors over an
/// arbitrary budget, and OneCycle momentum stays within its band.
#[test]
fn paper_schedules_well_behaved() {
    for total in [1u64, 7, 100, 999, 5000] {
        for t in (0..5000).step_by(97) {
            for spec in all_paper_schedules(3) {
                let mut s = spec.build();
                let f = s.factor(t, total);
                assert!(f.is_finite() && f >= 0.0, "{}: factor {f}", s.name());
                assert!(f <= 1.0 + 1e-9, "{}: factor {f} above initial LR", s.name());
                if let Some(m) = s.momentum(t, total) {
                    assert!((0.0..1.0).contains(&m), "{}: momentum {m}", s.name());
                }
            }
        }
    }
}

/// Budget invariance: a schedule's factor depends only on the progress
/// fraction, so scaling (t, total) together leaves it unchanged —
/// the property that makes budget adaptation automatic.
#[test]
fn factor_depends_only_on_progress() {
    for total in [10u64, 100, 1234, 10_000] {
        for i in 0..=50 {
            let frac = i as f64 / 50.0;
            for spec in [
                ScheduleSpec::Rex,
                ScheduleSpec::Linear,
                ScheduleSpec::Cosine,
                ScheduleSpec::Step,
            ] {
                let mut s = spec.build();
                // scale (t, total) by exactly 10x so the progress fraction
                // is bit-identical — the schedule must then agree exactly
                let t1 = (frac * total as f64) as u64;
                let f1 = s.factor(t1, total);
                let f2 = s.factor(t1 * 10, total * 10);
                assert!(
                    (f1 - f2).abs() < 1e-9,
                    "{}: {f1} vs {f2} at frac {frac}",
                    s.name()
                );
            }
        }
    }
}

/// Delayed wrapper: identity before the delay, decayed after,
/// continuous at the boundary.
#[test]
fn delayed_wrapper_contract() {
    for delay in [0.05f64, 0.25, 0.5, 0.75, 0.95] {
        let total = 1000u64;
        for t in (0..total).step_by(7) {
            let spec = ScheduleSpec::Delayed(Box::new(ScheduleSpec::Linear), delay);
            let mut s = spec.build();
            let x = t as f64 / total as f64;
            let f = s.factor(t, total);
            if x < delay - 1e-9 {
                assert!(
                    (f - 1.0).abs() < 1e-9,
                    "held region must stay at 1, got {f} at x={x}"
                );
            } else {
                let expected = 1.0 - (x - delay) / (1.0 - delay);
                assert!(
                    (f - expected).abs() < 0.01,
                    "decay region: {f} vs {expected}"
                );
            }
        }
    }
}

/// Warmup wrapper: factors rise monotonically during warmup and never
/// exceed 1.
#[test]
fn warmup_monotone_rise() {
    for steps in [2u64, 3, 10, 37, 99] {
        let spec = ScheduleSpec::WithWarmup(Box::new(ScheduleSpec::Linear), steps, 0.1);
        let mut s = spec.build();
        let total = steps + 200;
        let mut prev = 0.0;
        for t in 0..steps {
            let f = s.factor(t, total);
            assert!(f >= prev - 1e-12, "warmup dipped at t={t} (steps={steps})");
            assert!(f <= 1.0 + 1e-12);
            prev = f;
        }
    }
}

#[test]
fn plateau_spec_requests_validation_feedback() {
    assert!(ScheduleSpec::DecayOnPlateau(5).needs_validation_feedback());
    assert!(!ScheduleSpec::Rex.needs_validation_feedback());
    // wrappers propagate the requirement
    let wrapped = ScheduleSpec::WithWarmup(Box::new(ScheduleSpec::DecayOnPlateau(5)), 10, 0.1);
    assert!(wrapped.needs_validation_feedback());
}

/// REX pinned against the paper's closed form
/// η_t = η₀ · (1 − t/T) / (1/2 + 1/2·(1 − t/T)) at canonical progress
/// fractions, including the last step before exhaustion (t/T = 1 − 1/T).
#[test]
fn rex_closed_form_pinned_values() {
    let total = 100u64;
    let mut rex = ScheduleSpec::Rex.build();
    for (t, want) in [
        (0u64, 1.0),
        (25, 6.0 / 7.0),
        (50, 2.0 / 3.0),
        (75, 2.0 / 5.0),
        (99, 2.0 / 101.0), // t/T = 1 − 1/T
    ] {
        let got = rex.factor(t, total);
        assert!(
            (got - want).abs() < 1e-12,
            "REX at t={t}/{total}: got {got}, want {want}"
        );
    }
}

/// OneCycle's two phases are strictly monotone: the LR factor rises over
/// the first half of the budget and falls over the second, while the
/// momentum does exactly the opposite.
#[test]
fn onecycle_phases_are_monotone() {
    let total = 1000u64;
    let mut oc = OneCycle::default();
    for t in 1..=total {
        let prev_f = oc.factor(t - 1, total);
        let f = oc.factor(t, total);
        let prev_m = oc.momentum(t - 1, total).unwrap();
        let m = oc.momentum(t, total).unwrap();
        if t <= total / 2 {
            assert!(f > prev_f, "LR must rise during warmup, t={t}");
            assert!(m < prev_m, "momentum must fall during warmup, t={t}");
        } else {
            assert!(f < prev_f, "LR must fall during cooldown, t={t}");
            assert!(m > prev_m, "momentum must rise during cooldown, t={t}");
        }
    }
}

/// OneCycle peaks exactly mid-budget at the full initial LR, starts and
/// ends at the 0.1 floor, and its momentum mirrors the LR within the
/// recommended [0.85, 0.95] band.
#[test]
fn onecycle_peak_floor_and_momentum_band() {
    let total = 1000u64;
    let mut oc = OneCycle::default();
    assert!((oc.factor(total / 2, total) - 1.0).abs() < 1e-12, "peak");
    assert!((oc.factor(0, total) - 0.1).abs() < 1e-12, "start floor");
    assert!((oc.factor(total, total) - 0.1).abs() < 1e-12, "end floor");
    for t in (0..=total).step_by(7) {
        let f = oc.factor(t, total);
        let m = oc.momentum(t, total).unwrap();
        assert!((0.1..=1.0 + 1e-12).contains(&f), "factor {f} at t={t}");
        assert!((0.85..=0.95).contains(&m), "momentum {m} at t={t}");
        // exact mirror: both are affine images of the same triangle wave
        let tri = (f - 0.1) / 0.9;
        let want_m = 0.95 - 0.1 * tri;
        assert!(
            (m - want_m).abs() < 1e-12,
            "momentum not mirroring at t={t}"
        );
    }
}

/// Plateau patience contract: the decay fires only after `patience`
/// consecutive stale validations, any real improvement resets the stale
/// counter, and the factor is γ^decays independent of progress.
#[test]
fn plateau_patience_and_decay_factor() {
    let mut s = DecayOnPlateau::new(3, 0.1);
    s.on_validation(2.0);
    // two stale reports: not enough
    s.on_validation(2.0);
    s.on_validation(2.0);
    assert_eq!(s.decay_count(), 0);
    // improvement resets the window
    s.on_validation(1.0);
    s.on_validation(1.0);
    s.on_validation(1.0);
    assert_eq!(s.decay_count(), 0);
    // third consecutive stale report after the reset triggers the decay
    s.on_validation(1.0);
    assert_eq!(s.decay_count(), 1);
    // factor is progress-independent
    let f_early = s.factor(0, 100);
    let f_late = s.factor(99, 100);
    assert!((f_early - 0.1).abs() < 1e-12 && (f_early - f_late).abs() < 1e-12);
}

/// Plateau cooldown contract: a decay resets the stale counter, so the
/// next decay needs a full fresh patience window — decays can never fire
/// on consecutive validations when patience > 1.
#[test]
fn plateau_cooldown_between_decays() {
    let mut s = DecayOnPlateau::new(2, 0.5);
    s.on_validation(1.0);
    let mut decay_gaps = Vec::new();
    let mut last_decay_at = None;
    for i in 0..9 {
        let before = s.decay_count();
        s.on_validation(1.0); // never improves
        if s.decay_count() > before {
            if let Some(prev) = last_decay_at {
                decay_gaps.push(i - prev);
            }
            last_decay_at = Some(i);
        }
    }
    assert_eq!(s.decay_count(), 4, "9 stale reports, patience 2");
    assert!(
        decay_gaps.iter().all(|&g| g >= 2),
        "decays fired without a full patience window between them: {decay_gaps:?}"
    );
    assert!((s.factor(0, 1) - 0.5f64.powi(4)).abs() < 1e-12);
    // reset restores the undecayed factor
    s.reset();
    assert_eq!(s.factor(0, 1), 1.0);
}

#[test]
fn schedule_names_are_unique_within_a_table() {
    let mut names: Vec<String> = all_paper_schedules(5).iter().map(|s| s.name()).collect();
    let before = names.len();
    names.sort();
    names.dedup();
    assert_eq!(
        names.len(),
        before,
        "duplicate schedule names would corrupt tables"
    );
}
