//! Reproducibility guarantees: every experiment in EXPERIMENTS.md must be
//! regenerable bit-for-bit from its seed, across the whole stack.

use rex::data::digits::synth_digits;
use rex::data::images::synth_cifar10;
use rex::data::scenes::synth_scenes;
use rex::data::text::glue_tasks;
use rex::nn::{MicroResNet, Module};
use rex::schedules::ScheduleSpec;
use rex::train::tasks::{run_image_cell, run_vae_cell, ImageModel};
use rex::train::OptimizerKind;

#[test]
fn datasets_are_seed_deterministic() {
    assert_eq!(
        synth_cifar10(5, 2, 42).train_images,
        synth_cifar10(5, 2, 42).train_images
    );
    assert_eq!(
        synth_digits(20, 12, 7).images,
        synth_digits(20, 12, 7).images
    );
    assert_eq!(synth_scenes(5, 24, 3).images, synth_scenes(5, 24, 3).images);
    let a = glue_tasks(4, 2, 16, 64, 9);
    let b = glue_tasks(4, 2, 16, 64, 9);
    assert_eq!(a[0].train_tokens, b[0].train_tokens);
}

#[test]
fn datasets_differ_across_seeds() {
    assert_ne!(
        synth_cifar10(5, 2, 1).train_images,
        synth_cifar10(5, 2, 2).train_images
    );
}

#[test]
fn model_init_is_seed_deterministic() {
    let a = MicroResNet::rn20_analog(10, 5);
    let b = MicroResNet::rn20_analog(10, 5);
    for (pa, pb) in a.params().iter().zip(b.params().iter()) {
        assert_eq!(*pa.value(), *pb.value(), "{}", pa.name());
    }
    let c = MicroResNet::rn20_analog(10, 6);
    assert_ne!(*a.params()[0].value(), *c.params()[0].value());
}

#[test]
fn full_training_cell_is_bit_reproducible() {
    let data = synth_cifar10(4, 2, 11);
    let run = || {
        run_image_cell(
            ImageModel::MicroResNet20,
            &data,
            2,
            16,
            OptimizerKind::adam(),
            ScheduleSpec::Rex,
            1e-3,
            99,
        )
        .unwrap()
    };
    assert_eq!(run(), run());
}

#[test]
fn vae_cell_is_bit_reproducible_despite_sampling() {
    // the reparameterisation noise comes from a seeded stream inside the
    // model, so even the stochastic path reproduces exactly
    let train = synth_digits(32, 12, 0);
    let test = synth_digits(16, 12, 1);
    let run = || {
        run_vae_cell(
            &train,
            &test,
            2,
            16,
            OptimizerKind::adam(),
            ScheduleSpec::Linear,
            1e-3,
            5,
        )
        .unwrap()
    };
    assert_eq!(run(), run());
}

#[test]
fn different_trial_seeds_give_different_results() {
    let data = synth_cifar10(4, 2, 11);
    let run = |seed| {
        run_image_cell(
            ImageModel::MicroResNet20,
            &data,
            1,
            16,
            OptimizerKind::sgdm(),
            ScheduleSpec::Rex,
            0.1,
            seed,
        )
        .unwrap()
    };
    // different seeds shuffle/init differently; final errors almost surely
    // differ at this tiny scale
    assert_ne!(run(1), run(2));
}
