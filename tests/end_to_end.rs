//! End-to-end integration tests: every experimental setting's driver runs
//! the full stack (data → model → autograd → optimizer → schedule →
//! metric) at miniature scale.

use rex::data::digits::synth_digits;
use rex::data::images::{synth_cifar10, synth_stl10};
use rex::data::scenes::synth_scenes;
use rex::data::text::{glue_tasks, lm_corpus};
use rex::nn::TransformerConfig;
use rex::schedules::ScheduleSpec;
use rex::train::tasks::{
    pretrain_transformer, run_detection_cell, run_glue_cell, run_image_cell, run_vae_cell,
    ImageModel,
};
use rex::train::{Budget, OptimizerKind};

#[test]
fn classification_setting_end_to_end() {
    let data = synth_cifar10(6, 3, 0);
    for model in [ImageModel::MicroResNet20, ImageModel::MicroVgg(12)] {
        for opt in [OptimizerKind::sgdm(), OptimizerKind::adam()] {
            let err = run_image_cell(
                model,
                &data,
                1,
                16,
                opt,
                ScheduleSpec::Rex,
                opt.default_lr(),
                7,
            )
            .unwrap();
            assert!((0.0..=100.0).contains(&err), "{model:?}/{opt:?}: {err}");
        }
    }
}

#[test]
fn wide_resnet_setting_end_to_end() {
    let data = synth_stl10(4, 2, 1);
    let err = run_image_cell(
        ImageModel::MicroWide(2),
        &data,
        1,
        16,
        OptimizerKind::sgdm(),
        ScheduleSpec::Linear,
        0.1,
        3,
    )
    .unwrap();
    assert!((0.0..=100.0).contains(&err));
}

#[test]
fn vae_setting_end_to_end() {
    let train = synth_digits(48, 12, 0);
    let test = synth_digits(16, 12, 1);
    let loss = run_vae_cell(
        &train,
        &test,
        2,
        16,
        OptimizerKind::adam(),
        ScheduleSpec::Cosine,
        1e-3,
        5,
    )
    .unwrap();
    assert!(loss.is_finite() && loss > 0.0);
}

#[test]
fn detection_setting_end_to_end() {
    let train = synth_scenes(12, 24, 0);
    let test = synth_scenes(6, 24, 1);
    let map = run_detection_cell(
        &train,
        &test,
        1,
        1,
        6,
        OptimizerKind::adam(),
        ScheduleSpec::Rex,
        1e-3,
        2,
    )
    .unwrap();
    assert!((0.0..=100.0).contains(&map));
}

#[test]
fn glue_setting_end_to_end() {
    let cfg = TransformerConfig {
        vocab: 32,
        dim: 16,
        heads: 2,
        depth: 1,
        seq_len: 12,
        ff_mult: 2,
    };
    let corpus = lm_corpus(32, 12, 32, 0);
    let tf = pretrain_transformer(&corpus, cfg, 1, 8, 1e-3, 1).unwrap();
    let tasks = glue_tasks(24, 12, 12, 32, 2);
    for sched in [ScheduleSpec::Rex, ScheduleSpec::None] {
        let acc = run_glue_cell(&tf, &tasks[0], 1, 8, sched, 1e-3, 3).unwrap();
        assert!((0.0..=100.0).contains(&acc));
    }
}

#[test]
fn every_paper_schedule_survives_a_real_training_run() {
    let data = synth_cifar10(4, 2, 9);
    let mut schedules = vec![ScheduleSpec::None];
    schedules.extend(rex::schedules::all_paper_schedules(1));
    for sched in schedules {
        let err = run_image_cell(
            ImageModel::MicroResNet20,
            &data,
            2,
            16,
            OptimizerKind::sgdm(),
            sched.clone(),
            0.1,
            11,
        )
        .unwrap_or_else(|e| panic!("{}: {e}", sched.name()));
        assert!(err.is_finite(), "{}: {err}", sched.name());
    }
}

#[test]
fn budget_protocol_rounds_up_and_scales() {
    // the paper's rounding rule: 1% of 50 epochs is 1 epoch, never 0
    assert_eq!(Budget::new(50, 1).epochs(), 1);
    // schedules decay within the budget: training 1 epoch at budget 1%
    // must be identical to training 1 epoch at budget 100% of 1 epoch
    let data = synth_cifar10(4, 2, 13);
    let run = |epochs: usize| {
        run_image_cell(
            ImageModel::MicroResNet20,
            &data,
            epochs,
            16,
            OptimizerKind::sgdm(),
            ScheduleSpec::Linear,
            0.1,
            17,
        )
        .unwrap()
    };
    assert_eq!(run(1), run(1), "same budgeted horizon, same result");
}
