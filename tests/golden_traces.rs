//! Golden-trace regression tests: full training trajectories (every
//! optimizer step's LR, loss, and norms) pinned against committed JSONL
//! traces under `tests/golden/`.
//!
//! The grid covers the paper's four headline schedules (REX, linear,
//! cosine, step) at a small and a medium budget (10 % and 50 % of
//! 8 epochs) on the synthetic-digits classification task — small enough
//! to run in CI, large enough to exercise shuffling, a partial final
//! mini-batch, and multi-epoch schedule progress.
//!
//! Comparison uses [`rex::telemetry::golden::diff_traces`]: integers and
//! structure exactly, floats under the documented tolerances (LR nearly
//! exact, losses/norms at 0.5 % relative). On divergence the failure
//! message names the first divergent event, its optimizer step, and the
//! field.
//!
//! To regenerate the goldens after an intentional trajectory change:
//!
//! ```text
//! scripts/bless_traces.sh        # = REX_BLESS=1 cargo test --test golden_traces
//! ```

use std::path::PathBuf;

use rex::data::digits::synth_digits;
use rex::nn::Mlp;
use rex::schedules::ScheduleSpec;
use rex::telemetry::golden::{diff_traces, Tolerances};
use rex::telemetry::{encode_trace, parse_trace, Event, MemorySink, Recorder};
use rex::tensor::Prng;
use rex::train::{Budget, FtConfig, OptimizerKind, TrainConfig, Trainer};

/// Maximum epochs of the golden setting; budgets are percentages of this.
const MAX_EPOCHS: usize = 8;
/// Seed for both the model init and the training run.
const SEED: u64 = 0x601D;

/// Runs one golden cell (digits classifier, Mlp 144-24-10, batch 16 over
/// 60 samples — a deliberate partial final batch of 12) and returns the
/// captured event trace.
fn run_trace(spec: &ScheduleSpec, budget_pct: u32) -> Vec<Event> {
    let train = synth_digits(60, 12, 0xD1_617);
    let test = synth_digits(30, 12, 0xD1_618);
    let mut rng = Prng::new(SEED);
    let model = Mlp::new("m", &[144, 24, 10], &mut rng);
    let sink = MemorySink::unbounded();
    let handle = sink.handle();
    let mut rec = Recorder::new(Box::new(sink));
    let mut trainer = Trainer::new(TrainConfig {
        epochs: Budget::new(MAX_EPOCHS, budget_pct).epochs(),
        batch_size: 16,
        lr: 0.1,
        optimizer: OptimizerKind::sgdm(),
        schedule: spec.clone(),
        augment: false,
        grad_clip: None,
        seed: SEED ^ u64::from(budget_pct),
        dtype: rex::tensor::DType::F32,
        ft: FtConfig::default(),
    });
    trainer
        .train_classifier_traced(
            &model,
            &train.images,
            &train.labels,
            &test.images,
            &test.labels,
            &mut rec,
        )
        .expect("golden cell must train");
    handle.events()
}

fn golden_path(name: &str, budget_pct: u32) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}_b{budget_pct}.jsonl"))
}

/// Compares one cell against its golden file, or rewrites the file when
/// the `REX_BLESS` environment variable is set.
fn check_cell(name: &str, spec: &ScheduleSpec, budget_pct: u32) {
    let events = run_trace(spec, budget_pct);
    let path = golden_path(name, budget_pct);
    if std::env::var_os("REX_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, encode_trace(&events, false)).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run scripts/bless_traces.sh",
            path.display()
        )
    });
    let golden = parse_trace(&text).expect("golden file must parse");
    if let Err(diff) = diff_traces(&golden, &events, &Tolerances::default()) {
        panic!("{name} @ {budget_pct}%: {diff}");
    }
}

#[test]
fn golden_trace_rex() {
    for pct in [10, 50] {
        check_cell("rex", &ScheduleSpec::Rex, pct);
    }
}

#[test]
fn golden_trace_linear() {
    for pct in [10, 50] {
        check_cell("linear", &ScheduleSpec::Linear, pct);
    }
}

#[test]
fn golden_trace_cosine() {
    for pct in [10, 50] {
        check_cell("cosine", &ScheduleSpec::Cosine, pct);
    }
}

#[test]
fn golden_trace_step() {
    for pct in [10, 50] {
        check_cell("step", &ScheduleSpec::Step, pct);
    }
}

/// Two same-seed runs must serialise to byte-identical JSONL (timing is
/// excluded from the encoding), so traces are diffable with plain tools.
#[test]
fn same_seed_traces_are_byte_identical() {
    let a = encode_trace(&run_trace(&ScheduleSpec::Rex, 50), false);
    let b = encode_trace(&run_trace(&ScheduleSpec::Rex, 50), false);
    assert_eq!(a, b);
    assert!(a.ends_with('\n') && a.lines().count() > 4);
}

/// Forced-dispatch court: *both* compute backends must reproduce the
/// committed goldens (the trace tolerances — LR nearly exact, losses and
/// norms at 0.5 % relative — absorb the backends' reduction-order drift),
/// and within each backend the same-seed trace must be byte-identical at
/// every pool size. This is the end-to-end statement of the backend
/// contract: numerics are a property of the *backend*, never of the
/// thread count, and switching backends moves the trajectory by rounding
/// only.
#[test]
fn traces_pass_under_both_forced_backends_at_any_thread_count() {
    use rex::tensor::backend::{self, BackendKind};

    for kind in [BackendKind::Scalar, BackendKind::Simd] {
        let baseline = backend::with_backend(kind, || {
            rex_pool::with_pool_size(1, || {
                encode_trace(&run_trace(&ScheduleSpec::Rex, 10), false)
            })
        });
        // the committed golden still holds under this backend
        let events = parse_trace(&baseline).expect("trace must re-parse");
        let text = std::fs::read_to_string(golden_path("rex", 10)).expect("golden file");
        let golden = parse_trace(&text).expect("golden file must parse");
        if let Err(diff) = diff_traces(&golden, &events, &Tolerances::default()) {
            panic!("rex @ 10% under {kind:?}: {diff}");
        }
        // and the backend's trajectory is thread-count-invariant, byte for byte
        for threads in [2usize, 3, 7] {
            let run = backend::with_backend(kind, || {
                rex_pool::with_pool_size(threads, || {
                    encode_trace(&run_trace(&ScheduleSpec::Rex, 10), false)
                })
            });
            assert_eq!(
                run, baseline,
                "{kind:?} trace diverged between 1 and {threads} threads"
            );
        }
    }
}

/// Dtype court: the default `--dtype f32` path must be a no-op relative
/// to the pre-dtype trainer — every committed golden file reproduces
/// *byte-identically* under the scalar backend (the backend the goldens
/// were blessed under), at serial and ragged pool sizes, and passes the
/// trace tolerances under the SIMD backend (whose reduction order drifts
/// by rounding, per the backend contract). If the mixed-precision
/// machinery ever perturbed the f32 path — an extra round-trip through a
/// narrowing kernel, a reordered update — this is the test that names
/// the file.
#[test]
fn dtype_f32_default_keeps_all_goldens_byte_identical() {
    use rex::tensor::backend::{self, BackendKind};

    let cells: [(&str, ScheduleSpec); 4] = [
        ("rex", ScheduleSpec::Rex),
        ("linear", ScheduleSpec::Linear),
        ("cosine", ScheduleSpec::Cosine),
        ("step", ScheduleSpec::Step),
    ];
    let mut checked = 0;
    for (name, spec) in &cells {
        for pct in [10u32, 50] {
            let path = golden_path(name, pct);
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
            for threads in [1usize, 3] {
                let run = backend::with_backend(BackendKind::Scalar, || {
                    rex_pool::with_pool_size(threads, || encode_trace(&run_trace(spec, pct), false))
                });
                assert_eq!(
                    run, text,
                    "{name} @ {pct}%: scalar f32 trace is not byte-identical \
                     to the committed golden at {threads} thread(s)"
                );
            }
            let simd = backend::with_backend(BackendKind::Simd, || {
                rex_pool::with_pool_size(1, || run_trace(spec, pct))
            });
            let golden = parse_trace(&text).expect("golden file must parse");
            if let Err(diff) = diff_traces(&golden, &simd, &Tolerances::default()) {
                panic!("{name} @ {pct}% under simd: {diff}");
            }
            checked += 1;
        }
    }
    // the glob above must cover every committed golden — a new cell
    // added to tests/golden/ without a row here should fail loudly
    let committed = std::fs::read_dir(golden_path("rex", 10).parent().unwrap())
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .is_ok_and(|e| e.path().extension().is_some_and(|x| x == "jsonl"))
        })
        .count();
    assert_eq!(
        checked, committed,
        "a committed golden file was not checked"
    );
}

/// The negative control: a one-step LR perturbation far smaller than any
/// loss-level noise must still be caught, and the report must point at
/// the exact step and field.
#[test]
fn injected_lr_perturbation_is_detected() {
    let golden = run_trace(&ScheduleSpec::Rex, 50);
    let mut tampered = golden.clone();
    let (idx, want_step) = tampered
        .iter()
        .enumerate()
        .filter_map(|(i, e)| e.as_step().map(|s| (i, s.step)))
        .nth(5)
        .expect("trace has at least six steps");
    if let Event::Step(rec) = &mut tampered[idx] {
        rec.lr *= 1.001; // 0.1% — invisible to loss tolerances, not to LR's
    }
    let diff = diff_traces(&golden, &tampered, &Tolerances::default())
        .expect_err("perturbed trace must diverge");
    assert_eq!(diff.index, idx);
    assert_eq!(diff.step, Some(want_step));
    assert_eq!(diff.field, "step.lr");

    // and the untampered trace still matches itself exactly
    assert!(diff_traces(&golden, &golden, &Tolerances::default()).is_ok());
}
