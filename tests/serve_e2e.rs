//! Workspace-level serving e2e: the two contracts that tie the HTTP
//! front door to the rest of the stack.
//!
//! 1. **Front-end equivalence** — a job run over HTTP produces a
//!    `trace.jsonl` byte-identical to the trace of the equivalent
//!    `rexctl train` invocation (same setting/budget/schedule/seed and,
//!    because checkpoint events are deterministic trace lines, the same
//!    checkpoint cadence).
//! 2. **Eviction and resume** — a `rex-faults` `kill-on-write` brings the
//!    whole server down mid-job (exit 86); a restart on the same data
//!    dir re-enqueues the job, resumes it from its last `REXSTATE1`
//!    checkpoint, and finishes with the same trace bytes an
//!    uninterrupted run produces.
//!
//! These run as root-package tests (the tier-1 `cargo test` surface), so
//! they locate the `rexctl`/`rexd` binaries themselves and build them on
//! demand — `cargo test --test serve_e2e` works from a cold target dir.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use rex::faults::KILL_EXIT_CODE;
use rex::serve::client::{request, HttpResponse};
use rex::telemetry::json::{parse_object, Value};

const TIMEOUT: Duration = Duration::from_secs(10);

/// The profile directory this test binary runs from
/// (`target/{debug,release}`), which is also where `cargo build` puts
/// the workspace binaries.
fn profile_dir() -> PathBuf {
    let exe = std::env::current_exe().expect("current_exe");
    // target/<profile>/deps/<test-bin> -> target/<profile>
    exe.parent()
        .and_then(Path::parent)
        .expect("profile dir")
        .to_owned()
}

/// Builds (once) and returns the path of a workspace binary.
fn bin_path(name: &str) -> PathBuf {
    static BUILD: OnceLock<()> = OnceLock::new();
    let profile = profile_dir();
    BUILD.get_or_init(|| {
        let mut cmd = Command::new(env!("CARGO"));
        cmd.args([
            "build",
            "--offline",
            "-p",
            "rex-cli",
            "-p",
            "rex-serve",
            "--bins",
        ]);
        if profile.file_name().is_some_and(|n| n == "release") {
            cmd.arg("--release");
        }
        let status = cmd
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .status()
            .expect("cargo build for serve e2e");
        assert!(status.success(), "building rexctl/rexd failed");
    });
    let path = profile.join(format!("{name}{}", std::env::consts::EXE_SUFFIX));
    assert!(path.is_file(), "missing binary {}", path.display());
    path
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rex_serve_e2e_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct Daemon {
    child: Child,
    addr: SocketAddr,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Starts `rexd` on an ephemeral port against `data_dir`, optionally
/// with a fault plan in its environment.
fn start_daemon(data_dir: &Path, faults: Option<&str>) -> Daemon {
    let mut cmd = Command::new(bin_path("rexd"));
    cmd.arg("--data-dir")
        .arg(data_dir)
        .args(["--addr", "127.0.0.1:0", "--workers", "1"])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    match faults {
        Some(plan) => cmd.env("REX_FAULTS", plan),
        None => cmd.env_remove("REX_FAULTS"),
    };
    let mut child = cmd.spawn().expect("spawn rexd");
    let stdout = child.stdout.take().expect("rexd stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("rexd startup line");
    let addr = line
        .trim()
        .strip_prefix("rexd listening on http://")
        .unwrap_or_else(|| panic!("unexpected startup line {line:?}"))
        .parse()
        .expect("parse rexd address");
    Daemon { child, addr }
}

fn get(addr: SocketAddr, path: &str) -> HttpResponse {
    request(addr, "GET", path, None, TIMEOUT).expect("GET")
}

fn json_of(resp: &HttpResponse) -> BTreeMap<String, Value> {
    parse_object(&resp.text()).unwrap_or_else(|e| panic!("bad JSON {:?}: {e}", resp.text()))
}

fn submit(addr: SocketAddr, body: &str) -> String {
    let resp = request(addr, "POST", "/v1/jobs", Some(body), TIMEOUT).expect("POST");
    assert_eq!(resp.status, 202, "{}", resp.text());
    json_of(&resp)["id"].as_str().expect("job id").to_owned()
}

fn wait_done(addr: SocketAddr, id: &str, within: Duration) -> BTreeMap<String, Value> {
    let deadline = Instant::now() + within;
    loop {
        let record = json_of(&get(addr, &format!("/v1/jobs/{id}")));
        let state = record["state"].as_str().unwrap().to_owned();
        if state == "done" {
            return record;
        }
        assert!(
            !["failed", "canceled"].contains(&state.as_str()),
            "job {id} ended {state}: {record:?}"
        );
        assert!(
            Instant::now() < deadline,
            "job {id} stuck in {state} past {within:?}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Runs `rexctl train` with a trace and checkpoint cadence matching the
/// server's, returning the trace bytes.
fn cli_reference_trace(dir: &Path, budget: u32, seed: u64, checkpoint_every: u64) -> Vec<u8> {
    let trace = dir.join("cli_trace.jsonl");
    let ckpt = dir.join("cli_ckpt.state");
    let out = Command::new(bin_path("rexctl"))
        .args([
            "train",
            "--setting",
            "digits-mlp",
            "--budget",
            &budget.to_string(),
            "--schedule",
            "rex",
            "--optimizer",
            "sgdm",
            "--seed",
            &seed.to_string(),
            "--checkpoint-every",
            &checkpoint_every.to_string(),
        ])
        .arg("--trace")
        .arg(&trace)
        .arg("--checkpoint")
        .arg(&ckpt)
        .env_remove("REX_FAULTS")
        .output()
        .expect("rexctl train");
    assert!(
        out.status.success(),
        "rexctl train failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::read(&trace).expect("CLI trace file")
}

/// Front-end equivalence: the server's on-disk trace, the trace it
/// streams over HTTP, and the CLI's trace are all byte-identical.
#[test]
fn http_job_trace_matches_cli_trace_byte_for_byte() {
    let dir = fresh_dir("parity");
    let (budget, seed, checkpoint_every) = (50u32, 9u64, 5u64);

    let server_trace;
    let streamed;
    {
        let daemon = start_daemon(&dir, None);
        let id = submit(
            daemon.addr,
            &format!(
                r#"{{"setting":"digits-mlp","budget":{budget},"schedule":"rex","optimizer":"sgdm","seed":{seed},"checkpoint_every":{checkpoint_every}}}"#
            ),
        );
        wait_done(daemon.addr, &id, Duration::from_secs(60));
        streamed = get(daemon.addr, &format!("/v1/jobs/{id}/trace")).body;
        server_trace = std::fs::read(dir.join("jobs").join(&id).join("trace.jsonl")).unwrap();
    }

    let cli_trace = cli_reference_trace(&dir, budget, seed, checkpoint_every);
    assert!(!cli_trace.is_empty());
    assert_eq!(
        streamed, server_trace,
        "streamed trace differs from the server's on-disk trace"
    );
    assert_eq!(
        server_trace, cli_trace,
        "HTTP-submitted job and CLI run produced different trace bytes"
    );
    let _ = std::fs::remove_dir_all(dir);
}

/// Eviction and resume: a fault-injected kill takes the server down on
/// its second checkpoint write (exit 86, mid-job); a restart on the same
/// data dir resumes the job from the checkpoint and the finished trace
/// is byte-identical to an uninterrupted CLI run's.
#[test]
fn killed_server_resumes_job_with_identical_trace() {
    let dir = fresh_dir("resume");
    let (budget, seed, checkpoint_every) = (100u32, 4u64, 5u64);
    let job = format!(
        r#"{{"setting":"digits-mlp","budget":{budget},"schedule":"rex","optimizer":"sgdm","seed":{seed},"checkpoint_every":{checkpoint_every}}}"#
    );

    // phase 1: server dies on the 2nd "state" (checkpoint) write — after
    // the write lands, so the checkpoint at step 10 is durable
    let id;
    {
        let mut daemon = start_daemon(&dir, Some("kill-on-write=state:2:post"));
        id = submit(daemon.addr, &job);
        let status = daemon.child.wait().expect("wait for injected kill");
        assert_eq!(
            status.code(),
            Some(KILL_EXIT_CODE),
            "server should die with the injected-kill exit code"
        );
    }
    // the job is frozen mid-run: manifest says running, checkpoint exists
    let manifest = std::fs::read_to_string(dir.join("jobs").join(&id).join("job.json")).unwrap();
    assert_eq!(
        parse_object(&manifest).unwrap()["state"].as_str(),
        Some("running")
    );
    assert!(dir.join("jobs").join(&id).join("ckpt.state").is_file());

    // phase 2: restart re-enqueues and resumes from the checkpoint
    let final_trace;
    {
        let daemon = start_daemon(&dir, None);
        let record = wait_done(daemon.addr, &id, Duration::from_secs(60));
        assert_eq!(record["resumes"].as_u64(), Some(1), "{record:?}");
        assert!(record["metric"].as_f64().is_some());
        final_trace = std::fs::read(dir.join("jobs").join(&id).join("trace.jsonl")).unwrap();
    }

    let cli_trace = cli_reference_trace(&dir, budget, seed, checkpoint_every);
    assert_eq!(
        final_trace, cli_trace,
        "kill + restart + resume changed the trace bytes"
    );
    let _ = std::fs::remove_dir_all(dir);
}

/// The backpressure contract is visible end-to-end from a cold start: a
/// depth-1 queue with a busy worker answers 429 with `Retry-After`.
#[test]
fn backpressure_is_observable_from_a_fresh_client() {
    let dir = fresh_dir("backpressure");
    let mut cmd = Command::new(bin_path("rexd"));
    cmd.arg("--data-dir")
        .arg(&dir)
        .args([
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "1",
            "--queue-depth",
            "1",
        ])
        .env("REX_FAULTS", "slow-io-on-write=state:0:50")
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    let mut child = cmd.spawn().expect("spawn rexd");
    let stdout = child.stdout.take().unwrap();
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).unwrap();
    let addr: SocketAddr = line
        .trim()
        .strip_prefix("rexd listening on http://")
        .unwrap()
        .parse()
        .unwrap();
    let daemon = Daemon { child, addr };

    let slow =
        r#"{"setting":"digits-mlp","budget":100,"schedule":"rex","seed":1,"checkpoint_every":1}"#;
    let first = submit(daemon.addr, slow);
    // wait until the worker picks it up, freeing the queue slot
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let state = json_of(&get(daemon.addr, &format!("/v1/jobs/{first}")))["state"]
            .as_str()
            .unwrap()
            .to_owned();
        if state == "running" {
            break;
        }
        assert!(Instant::now() < deadline, "job never started running");
        std::thread::sleep(Duration::from_millis(10));
    }
    submit(daemon.addr, slow); // fills the depth-1 queue
    let rejected = request(daemon.addr, "POST", "/v1/jobs", Some(slow), TIMEOUT).unwrap();
    assert_eq!(rejected.status, 429, "{}", rejected.text());
    assert!(rejected.header("retry-after").is_some());
    drop(daemon);
    let _ = std::fs::remove_dir_all(dir);
}

/// Sanity: the test can reach a daemon through a raw socket too (guards
/// against the client accidentally depending on server quirks).
#[test]
fn healthz_over_a_raw_socket() {
    let dir = fresh_dir("raw");
    let daemon = start_daemon(&dir, None);
    use std::io::Write;
    let mut stream = TcpStream::connect(daemon.addr).unwrap();
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    let resp = rex::serve::client::read_response(&mut BufReader::new(stream)).unwrap();
    assert_eq!(resp.status, 200);
    let body = resp.text();
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    assert!(body.contains("\"queue_depth\":"), "{body}");
    assert!(
        resp.header("x-request-id").is_some(),
        "raw-socket responses must carry a request id too"
    );
    drop(daemon);
    let _ = std::fs::remove_dir_all(dir);
}
