#!/usr/bin/env bash
# Regenerates every table and figure of the REX paper at the given scale.
# Usage: ./run_experiments.sh [smoke|fast|full] [outdir]
#
# Each experiment's failure is reported inline and counted; the script
# keeps going so one broken binary doesn't mask the rest, but it exits
# non-zero if anything failed — `|| echo` alone would swallow the status
# and report success to CI.
set -euo pipefail
SCALE="${1:-fast}"
OUT="${2:-results}"
mkdir -p "$OUT"
failed=0
for bin in table2 table4 table5 table6 table7 table8 table9 table10_11 \
           fig2 fig3 fig4 ablations; do
    echo "=== $bin ($SCALE) ==="
    if ! ./target/release/$bin --scale "$SCALE" --out "$OUT" \
        > "$OUT/$bin.md" 2> "$OUT/$bin.log"; then
        echo "FAILED: $bin (see $OUT/$bin.log)"
        failed=$((failed + 1))
    fi
done
# aggregates (consume the CSVs above)
for bin in table1 fig1; do
    if ! ./target/release/$bin --out "$OUT" > "$OUT/$bin.md" 2> "$OUT/$bin.log"; then
        echo "FAILED: $bin (see $OUT/$bin.log)"
        failed=$((failed + 1))
    fi
done
if [ "$failed" -gt 0 ]; then
    echo "$failed experiment(s) FAILED; outputs in $OUT/"
    exit 1
fi
echo "all experiments complete; outputs in $OUT/"
