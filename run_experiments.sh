#!/bin/sh
# Regenerates every table and figure of the REX paper at the given scale.
# Usage: ./run_experiments.sh [smoke|fast|full] [outdir]
SCALE="${1:-fast}"
OUT="${2:-results}"
mkdir -p "$OUT"
for bin in table2 table4 table5 table6 table7 table8 table9 table10_11 \
           fig2 fig3 fig4 ablations; do
    echo "=== $bin ($SCALE) ==="
    ./target/release/$bin --scale "$SCALE" --out "$OUT" \
        > "$OUT/$bin.md" 2> "$OUT/$bin.log" || echo "FAILED: $bin (see $OUT/$bin.log)"
done
# aggregates (consume the CSVs above)
./target/release/table1 --out "$OUT" > "$OUT/table1.md" 2> "$OUT/table1.log" || echo "FAILED: table1"
./target/release/fig1   --out "$OUT" > "$OUT/fig1.md"   2> "$OUT/fig1.log"   || echo "FAILED: fig1"
echo "all experiments complete; outputs in $OUT/"
